"""`repro check --fix`: the whitelisted rewrites and their guarantees.

Two properties are load-bearing and pinned here byte-for-byte:

* every rewrite reparses to the same AST as a hand-written fix, and
* running the fixer twice equals running it once (idempotence).
"""

import ast
import textwrap

from repro.checks import fix_tree, run_check
from repro.cli import main

_BROKEN = """
    import numpy as np


    def order(pids):
        out = []
        for pid in set(pids):
            out.append(pid)
        return out


    def tags(names):
        return ",".join({n.strip() for n in names})


    def draw(n):
        return np.random.normal(size=n)


    def fine(x):
        return x + 1  # repro: noqa[DET101] legacy waiver
"""

# What a careful human would write for the same file.
_HAND_FIXED = """
    import numpy as np


    def order(pids):
        out = []
        for pid in sorted(set(pids)):
            out.append(pid)
        return out


    def tags(names):
        return ",".join(sorted({n.strip() for n in names}))


    def draw(n):
        return np.random.default_rng(0).normal(size=n)


    def fine(x):
        return x + 1
"""


class TestFixTree:
    def test_fixed_file_matches_hand_fix_ast(self, tree):
        root = tree({"core/broken.py": _BROKEN})
        result = fix_tree(root)
        assert result.changed_files == ["core/broken.py"]
        fixed = (root / "core" / "broken.py").read_text()
        want = ast.dump(ast.parse(textwrap.dedent(_HAND_FIXED)))
        assert ast.dump(ast.parse(fixed)) == want
        assert run_check(root).findings == []

    def test_fix_is_idempotent_byte_for_byte(self, tree):
        root = tree({"core/broken.py": _BROKEN})
        fix_tree(root)
        once = (root / "core" / "broken.py").read_bytes()
        second = fix_tree(root)
        assert second.applied == 0 and not second.changed
        assert (root / "core" / "broken.py").read_bytes() == once

    def test_dry_run_leaves_tree_untouched_but_reports_diffs(self, tree):
        root = tree({"core/broken.py": _BROKEN})
        before = (root / "core" / "broken.py").read_bytes()
        result = fix_tree(root, write=False)
        assert (root / "core" / "broken.py").read_bytes() == before
        assert result.changed_files == ["core/broken.py"]
        diff = "".join(result.diffs)
        assert "a/core/broken.py" in diff and "b/core/broken.py" in diff
        assert "+    for pid in sorted(set(pids)):" in diff

    def test_unfixable_findings_are_left_alone(self, tree):
        # DET101 has no registered rewrite: report, don't touch.
        root = tree({
            "core/clock.py": "import time\n\n\ndef f():\n    return time.time()\n"
        })
        before = (root / "core" / "clock.py").read_bytes()
        result = fix_tree(root)
        assert result.applied == 0
        assert (root / "core" / "clock.py").read_bytes() == before
        assert result.report is not None and not result.report.ok

    def test_non_generator_compatible_numpy_draw_is_not_rewritten(self, tree):
        # np.random.seed has no Generator equivalent — stays a finding.
        root = tree({
            "core/seeded.py": "import numpy as np\n\nnp.random.seed(7)\n"
        })
        result = fix_tree(root)
        assert result.applied == 0
        assert [f.rule for f in result.report.findings] == ["DET106"]


class TestFixCli:
    def test_fix_flag_applies_and_exits_zero_when_clean(self, tree, capsys):
        root = tree({"core/broken.py": _BROKEN})
        assert main(["check", str(root), "--fix"]) == 0
        out = capsys.readouterr().out
        assert "applied 4 fix(es)" in out
        assert "clean" in out

    def test_diff_flag_exits_zero_and_writes_nothing(self, tree, capsys):
        root = tree({"core/broken.py": _BROKEN})
        before = (root / "core" / "broken.py").read_bytes()
        assert main(["check", str(root), "--diff"]) == 0
        assert (root / "core" / "broken.py").read_bytes() == before
        assert "tree untouched" in capsys.readouterr().out

    def test_fix_exits_one_when_unfixable_findings_remain(self, tree, capsys):
        root = tree({
            "core/mixed.py": """
                import time


                def f(pids):
                    t = time.time()
                    return [t] + [p for p in set(pids)]
            """,
        })
        assert main(["check", str(root), "--fix"]) == 1
        out = capsys.readouterr().out
        assert "DET101" in out  # the clock read survives the fixer
