"""Framework behavior: suppression, selection, reports, parse failures."""

import json

import pytest

from repro.checks import CheckError, all_rule_classes, run_check

from .conftest import check, rule_ids

BAD_CORE = {
    "core/bad.py": (
        "import time\n"
        "import random\n"
        "T = time.time()\n"
        "R = random.random()\n"
    )
}


class TestNoqa:
    def test_bare_noqa_silences_every_rule_on_the_line(self, tree):
        root = tree({"core/waived.py": "import time\nT = time.time()  # repro: noqa\n"})
        report = check(root)
        assert report.ok and report.suppressed == 1

    def test_noqa_family_prefix_matches(self, tree):
        root = tree({
            "core/waived.py": "import time\nT = time.time()  # repro: noqa[DET]\n"
        })
        assert check(root).ok

    def test_noqa_for_a_different_rule_does_not_match(self, tree):
        root = tree({
            "core/bad.py": "import time\nT = time.time()  # repro: noqa[DET104]\n"
        })
        report = check(root)
        # The DET101 finding survives, and the useless DET104 waiver is
        # itself flagged stale (SUP901).
        assert rule_ids(report) == ["DET101", "SUP901"]
        assert report.suppressed == 0


class TestSelection:
    def test_select_restricts_to_family(self, tree):
        report = check(tree(BAD_CORE), select=["DET101"])
        assert rule_ids(report) == ["DET101"]
        assert report.rules == ["DET101"]

    def test_ignore_drops_family(self, tree):
        report = check(tree(BAD_CORE), ignore=["DET101"])
        assert rule_ids(report) == ["DET103"]

    def test_unknown_selector_is_loud(self, tree):
        with pytest.raises(CheckError, match="unknown rule selector"):
            check(tree(BAD_CORE), select=["DET999"])


class TestReport:
    def test_findings_sorted_and_counted(self, tree):
        report = check(tree(BAD_CORE))
        assert [f.rule for f in report.findings] == ["DET101", "DET103"]
        assert report.counts_by_rule() == {"DET101": 1, "DET103": 1}
        assert not report.ok

    def test_json_payload_shape(self, tree):
        report = check(tree(BAD_CORE))
        payload = json.loads(report.to_json())
        assert payload["ok"] is False
        assert payload["files_scanned"] == 1
        assert payload["counts_by_rule"] == {"DET101": 1, "DET103": 1}
        first = payload["findings"][0]
        assert first["rule"] == "DET101"
        assert first["path"] == "core/bad.py"
        assert first["line"] == 3
        assert first["hint"]
        assert set(payload["rules"]) == {cls.id for cls in all_rule_classes()}

    def test_render_names_rule_file_and_line(self, tree):
        report = check(tree(BAD_CORE))
        text = report.render()
        assert "core/bad.py:3:" in text and "DET101" in text

    def test_syntax_error_reported_not_raised(self, tree):
        root = tree({"core/broken.py": "def oops(:\n"})
        report = check(root)
        assert rule_ids(report) == ["CHK001"]
        assert "syntax error" in report.findings[0].message

    def test_bad_root_raises(self, tmp_path):
        with pytest.raises(CheckError, match="not a directory"):
            run_check(tmp_path / "missing")


class TestRuleCatalogue:
    def test_four_families_present(self):
        families = {cls.id.rstrip("0123456789") for cls in all_rule_classes()}
        assert {"DET", "LAY", "SER", "API"} <= families

    def test_every_rule_has_metadata(self):
        for cls in all_rule_classes():
            assert cls.id and cls.title and cls.hint
            assert cls.__doc__, f"{cls.id} needs a rationale docstring"
