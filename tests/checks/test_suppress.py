"""SUP901: stale-suppression detection (the meta-rule over noqa comments)."""

from .conftest import check, rule_ids


class TestStaleNoqa:
    def test_stale_selector_is_flagged(self, tree):
        report = check(tree({
            "core/ok.py": "X = 1  # repro: noqa[DET101] long-gone waiver\n"
        }))
        assert rule_ids(report) == ["SUP901"]
        finding = report.findings[0]
        assert "DET101" in finding.message
        assert finding.fix_kind == "drop_noqa"

    def test_stale_bare_noqa_is_flagged(self, tree):
        report = check(tree({"core/ok.py": "X = 1  # repro: noqa\n"}))
        assert rule_ids(report) == ["SUP901"]

    def test_working_suppression_is_not_stale(self, tree):
        report = check(tree({
            "core/clock.py": (
                "import time\nT = time.time()  # repro: noqa[DET101] fixture\n"
            )
        }))
        assert report.findings == [] and report.suppressed == 1

    def test_family_selector_matching_any_finding_is_not_stale(self, tree):
        report = check(tree({
            "core/clock.py": (
                "import time\nT = time.time()  # repro: noqa[DET] fixture\n"
            )
        }))
        assert report.findings == []

    def test_sup901_finding_is_itself_suppressible(self, tree):
        report = check(tree({
            "core/ok.py": "X = 1  # repro: noqa[DET101,SUP901] placeholder\n"
        }))
        assert report.findings == [] and report.suppressed == 1


class TestSelectorNarrowing:
    def test_not_judged_when_its_rule_is_deselected(self, tree):
        # Under --select DET104 the DET101 rule never ran, so a DET101
        # waiver cannot be judged stale — it might be load-bearing.
        report = check(
            tree({
                "core/clock.py": (
                    "import time\nT = time.time()  # repro: noqa[DET101]\n"
                )
            }),
            select=["DET104", "SUP901"],
        )
        assert report.findings == []

    def test_unknown_selector_is_not_judged(self, tree):
        # Docstrings mentioning the syntax with a placeholder selector
        # (e.g. RULE) must not be reported as stale suppressions.
        report = check(tree({
            "core/doc.py": '"""Use  # repro: noqa[RULE]  to waive."""\n'
        }))
        assert report.findings == []

    def test_sup901_can_be_ignored(self, tree):
        report = check(
            tree({"core/ok.py": "X = 1  # repro: noqa[DET101] stale\n"}),
            ignore=["SUP"],
        )
        assert report.findings == []
