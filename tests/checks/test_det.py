"""DET rules: hit, clean-pass and noqa-suppressed cases for every id."""

from .conftest import check, rule_ids


class TestDET101WallClock:
    def test_hit_time_call(self, tree):
        root = tree({"core/bad.py": """
            import time

            def now():
                return time.time()
        """})
        report = check(root)
        assert rule_ids(report) == ["DET101"]
        finding = report.findings[0]
        assert finding.path == "core/bad.py"
        assert finding.line == 5

    def test_hit_through_alias_and_from_import(self, tree):
        root = tree({"network/bad.py": """
            from time import perf_counter as tick

            def stamp():
                return tick()
        """})
        assert rule_ids(check(root)) == ["DET101"]

    def test_pass_outside_protocol_scope(self, tree):
        # The engine layer times runs deliberately; DET does not apply.
        root = tree({"engine/ok.py": """
            import time

            def wall():
                return time.perf_counter()
        """})
        assert check(root).ok

    def test_pass_clean_protocol_code(self, tree):
        root = tree({"core/ok.py": """
            def rounds_used(metrics):
                return metrics.rounds
        """})
        assert check(root).ok

    def test_noqa_suppresses(self, tree):
        root = tree({"core/waived.py": """
            import time

            def now():
                return time.time()  # repro: noqa[DET101] test fixture
        """})
        report = check(root)
        assert report.ok and report.suppressed == 1


class TestDET102AmbientEntropy:
    def test_hit_urandom_and_uuid(self, tree):
        root = tree({"crypto/bad.py": """
            import os
            import uuid

            def nonce():
                return os.urandom(8) + uuid.uuid4().bytes
        """})
        report = check(root)
        assert rule_ids(report) == ["DET102"]
        assert len(report.findings) == 2

    def test_pass_os_path_is_not_entropy(self, tree):
        root = tree({"crypto/ok.py": """
            import os

            def here():
                return os.path.join("a", "b")
        """})
        assert check(root).ok

    def test_noqa_suppresses(self, tree):
        root = tree({"crypto/waived.py": """
            import os

            def nonce():
                return os.urandom(8)  # repro: noqa[DET102] test fixture
        """})
        report = check(root)
        assert report.ok and report.suppressed == 1


class TestDET103GlobalRng:
    def test_hit_module_level_random(self, tree):
        root = tree({"proxcensus/bad.py": """
            import random

            def flip():
                return random.randint(0, 1)
        """})
        report = check(root)
        assert rule_ids(report) == ["DET103"]

    def test_pass_seeded_instance(self, tree):
        root = tree({"proxcensus/ok.py": """
            import random

            def flip(seed):
                rng = random.Random(seed)
                return rng.randint(0, 1)
        """})
        assert check(root).ok

    def test_noqa_suppresses(self, tree):
        root = tree({"proxcensus/waived.py": """
            import random

            def flip():
                return random.random()  # repro: noqa[DET103] test fixture
        """})
        report = check(root)
        assert report.ok and report.suppressed == 1


class TestDET104SetIteration:
    def test_hit_for_loop_and_list_conversion(self, tree):
        root = tree({"network/bad.py": """
            def payloads(pids):
                out = []
                for pid in set(pids):
                    out.append(pid)
                return out, list({1, 2, 3})
        """})
        report = check(root)
        assert rule_ids(report) == ["DET104"]
        assert len(report.findings) == 2

    def test_hit_comprehension_over_set_op(self, tree):
        root = tree({"core/bad.py": """
            def union(a, b):
                return [x for x in a.union(b)]
        """})
        assert rule_ids(check(root)) == ["DET104"]

    def test_pass_sorted_wrapping(self, tree):
        root = tree({"network/ok.py": """
            def payloads(pids):
                return [pid for pid in sorted(set(pids))]
        """})
        assert check(root).ok

    def test_pass_order_insensitive_reductions(self, tree):
        root = tree({"core/ok.py": """
            def stats(pids):
                quorum = {p for p in pids if p >= 0}
                return len(quorum), max(quorum), 3 in quorum
        """})
        assert check(root).ok

    def test_noqa_suppresses(self, tree):
        root = tree({"network/waived.py": """
            def anyone(pids):
                for pid in set(pids):  # repro: noqa[DET104] test fixture
                    return pid
        """})
        report = check(root)
        assert report.ok and report.suppressed == 1


class TestDET105IdOrdering:
    def test_hit_sort_key_and_comparison(self, tree):
        root = tree({"core/bad.py": """
            def order(parties, a, b):
                parties.sort(key=id)
                return id(a) < id(b)
        """})
        report = check(root)
        assert rule_ids(report) == ["DET105"]
        assert len(report.findings) == 2

    def test_hit_sorted_with_id_lambda(self, tree):
        root = tree({"core/bad2.py": """
            def order(parties):
                return sorted(parties, key=lambda p: id(p))
        """})
        assert rule_ids(check(root)) == ["DET105"]

    def test_pass_identity_cache_and_stable_keys(self, tree):
        root = tree({"crypto/ok.py": """
            def memo(cache, message, parties):
                cache[id(message)] = message
                return sorted(parties, key=lambda p: p.pid)
        """})
        assert check(root).ok

    def test_noqa_suppresses(self, tree):
        root = tree({"core/waived.py": """
            def order(parties):
                return sorted(parties, key=id)  # repro: noqa[DET105] test fixture
        """})
        report = check(root)
        assert report.ok and report.suppressed == 1


class TestDET106NumpyGlobalRng:
    def test_hit_seed_and_module_level_draw(self, tree):
        root = tree({"engine/bad.py": """
            import numpy as np

            def shuffle(values):
                np.random.seed(0)
                return np.random.permutation(values)
        """})
        report = check(root)
        assert rule_ids(report) == ["DET106"]
        assert len(report.findings) == 2

    def test_hit_through_from_import_alias(self, tree):
        root = tree({"core/bad.py": """
            from numpy import random as nr

            def draw():
                return nr.randint(0, 2)
        """})
        assert rule_ids(check(root)) == ["DET106"]

    def test_pass_explicit_generator(self, tree):
        root = tree({"engine/ok.py": """
            import numpy as np

            def draw(seed):
                rng = np.random.default_rng(np.random.SeedSequence(seed))
                return rng.integers(0, 2)
        """})
        assert check(root).ok

    def test_pass_outside_scope(self, tree):
        # The analysis layer reports; it may randomize freely.
        root = tree({"analysis/ok.py": """
            import numpy as np

            def jitter(values):
                return values + np.random.normal(size=len(values))
        """})
        assert check(root).ok

    def test_noqa_suppresses(self, tree):
        root = tree({"engine/waived.py": """
            import numpy as np

            def draw():
                return np.random.random()  # repro: noqa[DET106] test fixture
        """})
        report = check(root)
        assert report.ok and report.suppressed == 1


class TestDET107DictOrdering:
    def test_hit_next_iter_over_keys(self, tree):
        root = tree({"core/bad.py": """
            def pick(tally):
                return next(iter(tally.keys()))
        """})
        report = check(root)
        assert rule_ids(report) == ["DET107"]
        assert report.findings[0].path == "core/bad.py"

    def test_hit_max_with_key_over_keys(self, tree):
        root = tree({"proxcensus/bad.py": """
            def winner(tally):
                return max(tally.keys(), key=tally.get)
        """})
        assert rule_ids(check(root)) == ["DET107"]

    def test_hit_next_iter_over_dict_literal(self, tree):
        root = tree({"network/bad.py": """
            def first(pairs):
                return next(iter({k: v for k, v in pairs}))
        """})
        assert rule_ids(check(root)) == ["DET107"]

    def test_pass_sorted_keys_and_keyless_max(self, tree):
        root = tree({"core/ok.py": """
            def pick(tally):
                return next(iter(sorted(tally)))

            def biggest_key(tally):
                return max(tally.keys())
        """})
        assert check(root).ok

    def test_pass_items_with_total_key(self, tree):
        # The sanctioned tie-free idiom (turpin_coan, prox tallies).
        root = tree({"core/ok.py": """
            def winner(tally):
                value, _count = max(
                    tally.items(), key=lambda kv: (kv[1], repr(kv[0]))
                )
                return value
        """})
        assert check(root).ok

    def test_pass_outside_protocol_scope(self, tree):
        root = tree({"analysis/ok.py": """
            def pick(tally):
                return next(iter(tally.keys()))
        """})
        assert check(root).ok

    def test_noqa_suppresses(self, tree):
        root = tree({"core/waived.py": """
            def pick(tally):
                return next(iter(tally.keys()))  # repro: noqa[DET107] test fixture
        """})
        report = check(root)
        assert report.ok and report.suppressed == 1
