"""DET2xx: intraprocedural RNG taint tracking (hit / pass / noqa per rule)."""

from .conftest import check, rule_ids

_SELECT = ["DET201", "DET202", "DET203"]


def _only(tree, files):
    return check(tree(files), select=_SELECT)


class TestDet201Construction:
    def test_argless_constructor_is_flagged(self, tree):
        report = _only(tree, {
            "core/party.py": """
                import random

                def f():
                    rng = random.Random()
                    return rng.random()
            """,
        })
        assert rule_ids(report) == ["DET201"]
        assert "without a seed" in report.findings[0].message

    def test_clock_seed_laundered_through_local_is_flagged(self, tree):
        # The taint pass, not the call-site scan: time.time() lands in a
        # local first, the constructor only ever sees the local.
        report = _only(tree, {
            "core/party.py": """
                import random
                import time

                def f():
                    stamp = time.time()
                    noise = int(stamp * 1000)
                    return random.Random(noise)
            """,
        })
        assert rule_ids(report) == ["DET201"]
        assert "nondeterministic expression" in report.findings[0].message

    def test_seeded_construction_passes(self, tree):
        report = _only(tree, {
            "core/party.py": """
                import random

                def f(seed, pid):
                    return random.Random((seed << 8) ^ pid)
            """,
        })
        assert report.findings == []

    def test_numpy_argless_default_rng_is_flagged(self, tree):
        report = _only(tree, {
            "engine/worker.py": """
                import numpy as np

                def f():
                    return np.random.default_rng()
            """,
        })
        assert rule_ids(report) == ["DET201"]

    def test_noqa_suppresses(self, tree):
        report = _only(tree, {
            "core/party.py": """
                import random

                def f():
                    return random.Random()  # repro: noqa[DET201] fixture
            """,
        })
        assert report.findings == [] and report.suppressed == 1


class TestDet202SilentFallback:
    def test_none_fallback_to_argless_constructor_is_flagged(self, tree):
        report = _only(tree, {
            "core/party.py": """
                import random

                def f(n, rng=None):
                    if rng is None:
                        rng = random.Random()
                    return rng.randrange(n)
            """,
        })
        assert "DET202" in rule_ids(report)

    def test_or_fallback_to_global_draw_is_flagged(self, tree):
        report = _only(tree, {
            "core/party.py": """
                import random

                def f(coin_rng=None):
                    coin_rng = coin_rng or random.Random()
                    return coin_rng
            """,
        })
        assert "DET202" in rule_ids(report)

    def test_seeded_fallback_passes(self, tree):
        report = _only(tree, {
            "core/party.py": """
                import random

                def f(seed, rng=None):
                    if rng is None:
                        rng = random.Random(seed ^ 0xC0FFEE)
                    return rng.random()
            """,
        })
        assert report.findings == []

    def test_noqa_suppresses(self, tree):
        report = _only(tree, {
            "core/party.py": """
                import random

                def f(rng=None):
                    rng = rng or random.Random()  # repro: noqa[DET202] fixture
                    return rng
            """,
        })
        assert "DET202" not in rule_ids(report)


class TestDet203ModuleState:
    def test_module_level_rng_is_flagged(self, tree):
        report = _only(tree, {
            "network/jitter.py": """
                import random

                _RNG = random.Random(0)
            """,
        })
        assert rule_ids(report) == ["DET203"]
        assert "_RNG" in report.findings[0].message

    def test_global_rebind_inside_function_is_flagged(self, tree):
        report = _only(tree, {
            "core/party.py": """
                import random

                _shared = None

                def install(seed):
                    global _shared
                    _shared = random.Random(seed)
            """,
        })
        assert "DET203" in rule_ids(report)

    def test_rng_stored_into_module_container_is_flagged(self, tree):
        report = _only(tree, {
            "engine/pool.py": """
                _CACHE = {}

                def remember(key, trial_rng):
                    _CACHE[key] = trial_rng
            """,
        })
        assert "DET203" in rule_ids(report)
        assert "_CACHE" in report.findings[0].message

    def test_local_rng_passed_down_passes(self, tree):
        report = _only(tree, {
            "core/party.py": """
                import random

                def run(seed, helper):
                    rng = random.Random(seed)
                    return helper(rng)
            """,
        })
        assert report.findings == []

    def test_noqa_suppresses(self, tree):
        report = _only(tree, {
            "network/jitter.py": """
                import random

                _RNG = random.Random(0)  # repro: noqa[DET203] fixture
            """,
        })
        assert report.findings == [] and report.suppressed == 1


class TestScope:
    def test_analysis_and_cli_layers_are_exempt(self, tree):
        report = _only(tree, {
            "analysis/plots.py": """
                import random

                _RNG = random.Random()
            """,
        })
        assert report.findings == []
