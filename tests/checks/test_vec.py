"""VEC rules: vector-model registration, purity, fallback vocabulary, keys."""

from .conftest import check, rule_ids

_REGISTRY = """
    def register_protocol(name, factory):
        pass

    def register_adversary(name, factory):
        pass

    def register_vector_model(protocol, adversary, model):
        pass
"""

_CORE = """
    from ..engine.registry import register_protocol, register_adversary

    register_protocol("ba_one_third", lambda: None)
    register_adversary("crash", lambda: None)
"""


def _tree(tree, vectorized, select):
    return check(
        tree({
            "engine/registry.py": _REGISTRY,
            "core/protos.py": _CORE,
            "engine/vectorized.py": vectorized,
        }),
        select=select,
    )


class TestVec501Registration:
    def test_known_pair_passes(self, tree):
        report = _tree(tree, """
            from .registry import register_vector_model

            class Model:
                pass

            register_vector_model("ba_one_third", "crash", Model)
            register_vector_model("ba_one_third", None, Model)
        """, ["VEC501"])
        assert report.findings == []

    def test_unknown_protocol_and_adversary_are_flagged(self, tree):
        report = _tree(tree, """
            from .registry import register_vector_model

            class Model:
                pass

            register_vector_model("ba_phantom", "crash", Model)
            register_vector_model("ba_one_third", "ghost", Model)
        """, ["VEC501"])
        messages = sorted(f.message for f in report.findings)
        assert len(messages) == 2
        assert "ba_phantom" in messages[1]
        assert "ghost" in messages[0]

    def test_duplicate_pair_is_flagged(self, tree):
        report = _tree(tree, """
            from .registry import register_vector_model

            class Model:
                pass

            register_vector_model("ba_one_third", "crash", Model)
            register_vector_model("ba_one_third", "crash", Model)
        """, ["VEC501"])
        assert rule_ids(report) == ["VEC501"]
        assert "duplicate" in report.findings[0].message

    def test_computed_name_is_flagged(self, tree):
        report = _tree(tree, """
            from .registry import register_vector_model

            NAME = "ba_one_third"

            class Model:
                pass

            register_vector_model(NAME, "crash", Model)
        """, ["VEC501"])
        assert rule_ids(report) == ["VEC501"]

    def test_noqa_suppresses(self, tree):
        report = _tree(tree, """
            from .registry import register_vector_model

            class Model:
                pass

            register_vector_model("ba_phantom", None, Model)  # repro: noqa[VEC501] fixture
        """, ["VEC501"])
        assert report.findings == [] and report.suppressed == 1


class TestVec502Purity:
    def test_clock_and_live_rng_in_model_body_are_flagged(self, tree):
        report = _tree(tree, """
            import time
            from .registry import register_vector_model

            class Impure:
                def run(self, batch, party):
                    t = time.time()
                    return party.rng.random() + t

            register_vector_model("ba_one_third", "crash", Impure)
        """, ["VEC502"])
        messages = {f.message for f in report.findings}
        assert any("wall clock" in m for m in messages)
        assert any(".rng" in m for m in messages)

    def test_pure_model_passes(self, tree):
        report = _tree(tree, """
            from .registry import register_vector_model

            class Pure:
                def run(self, seeds, tallies):
                    return [s ^ t for s, t in zip(seeds, tallies)]

            register_vector_model("ba_one_third", "crash", Pure)
        """, ["VEC502"])
        assert report.findings == []

    def test_model_class_resolved_across_modules(self, tree):
        report = check(tree({
            "engine/registry.py": _REGISTRY,
            "core/protos.py": _CORE,
            "engine/models.py": """
                import time

                class Imported:
                    def run(self, batch):
                        return time.time()
            """,
            "engine/vectorized.py": """
                from .models import Imported
                from .registry import register_vector_model

                register_vector_model("ba_one_third", "crash", Imported)
            """,
        }), select=["VEC502"])
        assert rule_ids(report) == ["VEC502"]
        assert report.findings[0].path == "engine/models.py"

    def test_noqa_suppresses(self, tree):
        report = _tree(tree, """
            import time
            from .registry import register_vector_model

            class Impure:
                def run(self, batch):
                    return time.time()  # repro: noqa[VEC502] fixture

            register_vector_model("ba_one_third", "crash", Impure)
        """, ["VEC502"])
        assert report.findings == [] and report.suppressed == 1


class TestVec503FallbackVocabulary:
    def test_reason_in_vocabulary_passes(self, tree):
        report = _tree(tree, """
            FALLBACK_REASONS = frozenset({"numpy unavailable"})
            FALLBACK_REASON_PREFIXES = ("no ",)

            def unsupported_reason(spec):
                if spec is None:
                    return "numpy unavailable"
                return f"no vector model for {spec!r}"
        """, ["VEC503"])
        assert report.findings == []

    def test_novel_constant_reason_is_flagged(self, tree):
        report = _tree(tree, """
            FALLBACK_REASONS = frozenset({"numpy unavailable"})
            FALLBACK_REASON_PREFIXES = ("no ",)

            def unsupported_reason(spec):
                return "a reason nobody aggregated on"
        """, ["VEC503"])
        assert rule_ids(report) == ["VEC503"]

    def test_fstring_head_outside_prefixes_is_flagged(self, tree):
        report = _tree(tree, """
            FALLBACK_REASONS = frozenset({"numpy unavailable"})
            FALLBACK_REASON_PREFIXES = ("no ",)

            def _kappa_reason(spec):
                return f"weird kappa {spec!r}"
        """, ["VEC503"])
        assert rule_ids(report) == ["VEC503"]

    def test_missing_vocabulary_is_one_finding(self, tree):
        report = _tree(tree, """
            def unsupported_reason(spec):
                return "numpy unavailable"
        """, ["VEC503"])
        assert len(report.findings) == 1
        assert "FALLBACK_REASONS" in report.findings[0].message

    def test_noqa_suppresses(self, tree):
        report = _tree(tree, """
            FALLBACK_REASONS = frozenset({"numpy unavailable"})
            FALLBACK_REASON_PREFIXES = ("no ",)

            def unsupported_reason(spec):
                return "novel"  # repro: noqa[VEC503] fixture
        """, ["VEC503"])
        assert report.findings == [] and report.suppressed == 1


class TestVec504BatchKey:
    def test_replace_stripping_both_fields_passes(self, tree):
        report = _tree(tree, """
            import dataclasses

            def batch_key(spec):
                return dataclasses.replace(spec, seed=0, session="")
        """, ["VEC504"])
        assert report.findings == []

    def test_replace_missing_session_is_flagged(self, tree):
        report = _tree(tree, """
            import dataclasses

            def batch_key(spec):
                return dataclasses.replace(spec, seed=0)
        """, ["VEC504"])
        assert rule_ids(report) == ["VEC504"]
        assert "session" in report.findings[0].message

    def test_no_replace_at_all_is_flagged(self, tree):
        report = _tree(tree, """
            def batch_key(spec):
                return (spec.protocol, spec.adversary)
        """, ["VEC504"])
        assert rule_ids(report) == ["VEC504"]

    def test_noqa_suppresses(self, tree):
        report = _tree(tree, """
            import dataclasses

            def batch_key(spec):
                return dataclasses.replace(spec, seed=0)  # repro: noqa[VEC504] fixture
        """, ["VEC504"])
        assert report.findings == [] and report.suppressed == 1
