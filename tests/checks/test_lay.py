"""LAY rules: layer-map violations and module-level import cycles."""

from .conftest import check, rule_ids


class TestLAY201Layering:
    def test_hit_crypto_importing_upward(self, tree):
        root = tree({
            "crypto/bad.py": "from ..engine import runner\n",
            "engine/runner.py": "X = 1\n",
        })
        report = check(root, select=["LAY201"])
        assert rule_ids(report) == ["LAY201"]
        assert "'crypto' must not import 'engine'" in report.findings[0].message

    def test_hit_core_importing_engine_absolute(self, tree):
        root = tree({
            "core/bad.py": "from repro.engine.runner import run_trial\n",
        })
        report = check(root, select=["LAY201"])
        assert rule_ids(report) == ["LAY201"]

    def test_hit_lazy_import_still_counts(self, tree):
        # Deferring an upward import does not make it architectural.
        root = tree({"proxcensus/bad.py": """
            def sneaky():
                from ..analysis import stats
                return stats
        """})
        assert rule_ids(check(root, select=["LAY201"])) == ["LAY201"]

    def test_pass_downward_and_intra_layer(self, tree):
        root = tree({
            "network/ok.py": (
                "from ..crypto import keys\nfrom .messages import Outbox\n"
            ),
            "crypto/keys.py": "KEYS = 1\n",
            "network/messages.py": "Outbox = dict\n",
        })
        assert check(root, select=["LAY201"]).ok

    def test_pass_unmapped_layer_is_unconstrained(self, tree):
        root = tree({"cli.py": "from .engine import runner  # app layer\n"})
        assert check(root, select=["LAY201"]).ok

    def test_noqa_suppresses(self, tree):
        root = tree({
            "crypto/waived.py":
                "from ..engine import runner  # repro: noqa[LAY201] fixture\n",
        })
        report = check(root, select=["LAY201"])
        assert report.ok and report.suppressed == 1


class TestLAY202Cycles:
    def test_hit_two_module_cycle(self, tree):
        root = tree({
            "util/a.py": "from .b import f\n\ndef g():\n    return f\n",
            "util/b.py": "from .a import g\n\ndef f():\n    return g\n",
        })
        report = check(root, select=["LAY202"])
        assert rule_ids(report) == ["LAY202"]
        finding = report.findings[0]
        assert "util.a -> util.b -> util.a" in finding.message
        assert finding.path == "util/a.py" and finding.line == 1

    def test_pass_acyclic_chain(self, tree):
        root = tree({
            "util/a.py": "from .b import f\n",
            "util/b.py": "from .c import h\n\ndef f():\n    return h\n",
            "util/c.py": "def h():\n    return 1\n",
        })
        assert check(root, select=["LAY202"]).ok

    def test_pass_deferred_import_breaks_cycle(self, tree):
        # The sanctioned idiom: one direction moves inside a function.
        root = tree({
            "util/a.py": "def g():\n    from .b import f\n    return f\n",
            "util/b.py": "from .a import g\n\ndef f():\n    return g\n",
        })
        assert check(root, select=["LAY202"]).ok

    def test_noqa_suppresses(self, tree):
        root = tree({
            "util/a.py":
                "from .b import f  # repro: noqa[LAY202] fixture\n\ndef g():\n    return f\n",
            "util/b.py": "from .a import g\n\ndef f():\n    return g\n",
        })
        report = check(root, select=["LAY202"])
        assert report.ok and report.suppressed == 1
