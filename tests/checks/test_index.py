"""Phase-1 ProjectIndex: the symbol model cross-module rules read."""

import ast

from repro.checks import run_check
from repro.checks.framework import SourceModule
from repro.checks.index import NON_LITERAL, ProjectIndex


def _index(tree, files):
    root = tree(files)
    modules = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        text = path.read_text()
        modules.append(
            SourceModule(path, rel, ast.parse(text), text.splitlines())
        )
    return ProjectIndex(modules)


class TestRegistrations:
    def test_collects_and_decodes_register_calls(self, tree):
        index = _index(tree, {
            "engine/registry.py": """
                def register_protocol(name, factory):
                    pass
            """,
            "core/protos.py": """
                from ..engine.registry import register_protocol

                register_protocol("ba_one_third", lambda: None)
                register_protocol("ba_one_half", lambda: None)
            """,
        })
        calls = index.registrations["register_protocol"]
        # The def site is not a call; only the two core/ call sites count.
        assert [c.arg(0) for c in calls] == ["ba_one_third", "ba_one_half"]
        assert index.registered_names("register_protocol") == {
            "ba_one_third", "ba_one_half",
        }

    def test_non_literal_args_are_sentinel_not_none(self, tree):
        index = _index(tree, {
            "core/protos.py": """
                from ..engine.registry import register_vector_model

                NAME = "computed"
                register_vector_model(NAME, None, object)
            """,
        })
        call = index.registrations["register_vector_model"][0]
        assert call.arg(0) is NON_LITERAL
        assert call.arg(1) is None  # literal None is a real value
        assert call.arg(9) is NON_LITERAL  # out of range


class TestConstants:
    def test_recovers_frozenset_vocabulary_without_importing(self, tree):
        index = _index(tree, {
            "obs/sinks.py": """
                TRACE_RECORD_TYPES = frozenset({"trace", "msg", "end"})
            """,
        })
        assert index.constant("obs", "TRACE_RECORD_TYPES") == {
            "trace", "msg", "end",
        }

    def test_union_spelling_and_tuple(self, tree):
        index = _index(tree, {
            "engine/vectorized.py": """
                A = frozenset({"x"})
                B = A | frozenset({"y"})
                PREFIXES = ("no ", "unsupported ")
            """,
        })
        # B unions a Name, which is not a literal — only PREFIXES resolves.
        assert index.constant("engine", "PREFIXES") == ("no ", "unsupported ")
        assert index.constant("engine", "B") is None

    def test_missing_layer_or_name_is_none(self, tree):
        index = _index(tree, {"core/a.py": "X = 1\n"})
        assert index.constant("obs", "X") is None
        assert index.constant("core", "Y") is None


class TestResolveClass:
    def test_own_module_and_one_import_hop(self, tree):
        index = _index(tree, {
            "engine/models.py": """
                class CrashModel:
                    pass
            """,
            "engine/vectorized.py": """
                from .models import CrashModel

                class LocalModel:
                    pass
            """,
        })
        vec = index.by_name["engine.vectorized"]
        local = index.resolve_class(vec, "LocalModel")
        assert local is not None and local[1].name == "LocalModel"
        imported = index.resolve_class(vec, "CrashModel")
        assert imported is not None
        assert imported[0].name == "engine.models"
        assert imported[1].name == "CrashModel"
        assert index.resolve_class(vec, "Ghost") is None


class TestRunCheckIntegration:
    def test_rules_see_across_modules(self, tree):
        # VEC501 requires the index: the registration lives in engine/,
        # the protocol name is registered (or not) in core/.
        root = tree({
            "core/protos.py": """
                from ..engine.registry import register_protocol

                register_protocol("ba_real", lambda: None)
            """,
            "engine/registry.py": """
                def register_protocol(name, factory):
                    pass

                def register_vector_model(protocol, adversary, model):
                    pass
            """,
            "engine/vectorized.py": """
                from .registry import register_vector_model

                class M:
                    pass

                register_vector_model("ba_phantom", None, M)
            """,
        })
        report = run_check(root, select=["VEC501"])
        assert [f.rule for f in report.findings] == ["VEC501"]
        assert "ba_phantom" in report.findings[0].message
