"""OBS rules: trace/telemetry literals pinned to the schema vocabularies."""

from .conftest import check, rule_ids

# Indented to match the inline fixture bodies it is concatenated with,
# so the `tree` fixture's dedent sees one uniform block.
_VOCAB = """
            TRACE_RECORD_TYPES = frozenset({"trace", "msg", "corr", "end"})
            TELEMETRY_EVENT_TYPES = frozenset({"telemetry", "run_start", "end"})
"""


class TestObs601RecordTypes:
    def test_writer_and_reader_in_vocabulary_pass(self, tree):
        report = check(tree({
            "obs/sinks.py": _VOCAB + """
            def write(handle, r):
                handle.write({"t": "msg", "r": r})

            def read(record):
                kind = record["t"]
                if kind == "corr":
                    return 1
                return 0
            """,
        }), select=["OBS601"])
        assert report.findings == []

    def test_writer_typo_is_flagged(self, tree):
        report = check(tree({
            "obs/sinks.py": _VOCAB + """
            def write(handle, r):
                handle.write({"t": "mgs", "r": r})
            """,
        }), select=["OBS601"])
        assert rule_ids(report) == ["OBS601"]
        assert "'mgs'" in report.findings[0].message

    def test_reader_typo_is_flagged(self, tree):
        report = check(tree({
            "obs/sinks.py": _VOCAB,
            "engine/runner.py": """
                def digest(record):
                    if record["t"] == "mesg":
                        return 1
                    return 0
            """,
        }), select=["OBS601"])
        assert rule_ids(report) == ["OBS601"]
        assert report.findings[0].path == "engine/runner.py"

    def test_unrelated_string_comparisons_pass(self, tree):
        # Comparisons that never touch record["t"] or a `kind` local are
        # not record-type switches.
        report = check(tree({
            "obs/sinks.py": _VOCAB,
            "cli.py": """
                def pick(mode):
                    if mode == "anything-goes":
                        return 1
                    return 0
            """,
        }), select=["OBS601"])
        assert report.findings == []

    def test_inert_without_vocabulary_constants(self, tree):
        report = check(tree({
            "obs/sinks.py": """
                def write(handle):
                    handle.write({"t": "utter-nonsense"})
            """,
        }), select=["OBS601"])
        assert report.findings == []

    def test_noqa_suppresses(self, tree):
        report = check(tree({
            "obs/sinks.py": _VOCAB + """
            def write(handle):
                handle.write({"t": "mgs"})  # repro: noqa[OBS601] fixture
            """,
        }), select=["OBS601"])
        assert report.findings == [] and report.suppressed == 1


class TestObs602SpanNames:
    def test_known_span_passes(self, tree):
        report = check(tree({
            "obs/sinks.py": _VOCAB,
            "engine/runner.py": """
                def run(tele):
                    tele.emit("run_start", workers=1)
            """,
        }), select=["OBS602"])
        assert report.findings == []

    def test_unknown_span_is_flagged(self, tree):
        report = check(tree({
            "obs/sinks.py": _VOCAB,
            "engine/runner.py": """
                def run(tele):
                    tele.emit("run_strat", workers=1)
            """,
        }), select=["OBS602"])
        assert rule_ids(report) == ["OBS602"]
        assert "'run_strat'" in report.findings[0].message

    def test_out_of_scope_layer_passes(self, tree):
        report = check(tree({
            "obs/sinks.py": _VOCAB,
            "core/party.py": """
                def f(bus):
                    bus.emit("whatever")
            """,
        }), select=["OBS602"])
        assert report.findings == []

    def test_noqa_suppresses(self, tree):
        report = check(tree({
            "obs/sinks.py": _VOCAB,
            "engine/runner.py": """
                def run(tele):
                    tele.emit("run_strat")  # repro: noqa[OBS602] fixture
            """,
        }), select=["OBS602"])
        assert report.findings == [] and report.suppressed == 1


_METRICS_VOCAB = """
            METRIC_NAMES = frozenset({"messages", "fault_hits", "rounds_to_decision"})
"""


class TestObs603MetricNames:
    def test_known_metric_names_pass(self, tree):
        report = check(tree({
            "obs/metrics.py": _METRICS_VOCAB,
            "engine/runner.py": """
                def collect(registry, result):
                    registry.inc("messages", by=2)
                    registry.observe("rounds_to_decision", 3)
            """,
        }), select=["OBS603"])
        assert report.findings == []

    def test_counter_typo_is_flagged(self, tree):
        report = check(tree({
            "obs/metrics.py": _METRICS_VOCAB,
            "engine/runner.py": """
                def collect(registry):
                    registry.inc("mesages")
            """,
        }), select=["OBS603"])
        assert rule_ids(report) == ["OBS603"]
        assert "'mesages'" in report.findings[0].message

    def test_histogram_typo_is_flagged(self, tree):
        report = check(tree({
            "obs/metrics.py": _METRICS_VOCAB + """
            def observe_decision(registry, rounds):
                registry.observe("rounds_to_descision", rounds)
            """,
        }), select=["OBS603"])
        assert rule_ids(report) == ["OBS603"]
        assert report.findings[0].path == "obs/metrics.py"

    def test_non_literal_first_argument_passes(self, tree):
        # The adaptive runner's estimator takes computed observations —
        # only string literals are pinned.
        report = check(tree({
            "obs/metrics.py": _METRICS_VOCAB,
            "engine/adaptive.py": """
                def observe_outcome(estimate, event, result):
                    estimate.observe(event(result))
            """,
        }), select=["OBS603"])
        assert report.findings == []

    def test_inert_without_vocabulary_constant(self, tree):
        report = check(tree({
            "engine/runner.py": """
                def collect(registry):
                    registry.inc("mesages")
            """,
        }), select=["OBS603"])
        assert report.findings == []

    def test_out_of_scope_layer_passes(self, tree):
        report = check(tree({
            "obs/metrics.py": _METRICS_VOCAB,
            "core/party.py": """
                def f(counter):
                    counter.inc("whatever")
            """,
        }), select=["OBS603"])
        assert report.findings == []
