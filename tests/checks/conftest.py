"""Fixture helpers: build throwaway package trees and check them."""

import textwrap

import pytest

from repro.checks import run_check


@pytest.fixture
def tree(tmp_path):
    """Write ``{relative_path: source}`` under a tmp package root.

    Returns a builder; the builder returns the root path to hand to
    :func:`repro.checks.run_check`.  Sources are dedented so fixtures
    can be written inline as indented triple-quoted strings.
    """

    def build(files):
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
        return tmp_path

    return build


def rule_ids(report):
    """The distinct rule ids present in a report's findings."""
    return sorted({finding.rule for finding in report.findings})


def check(root, **kwargs):
    return run_check(root, **kwargs)
