"""The gate itself: `repro check` stays clean on this repository.

These tests are the CI contract: the first asserts the shipped source
tree has no violations (so any new finding fails the suite, not just
the separate `make check` leg); the second asserts the pass actually
*detects* — a copy of the real tree with one seeded `time.time()` in
`core/` must fail, naming the rule, file and line.
"""

import shutil
from pathlib import Path

import repro
from repro.checks import run_check
from repro.cli import main

PACKAGE_ROOT = Path(repro.__file__).parent


def _copy_tree(destination: Path) -> Path:
    root = destination / "repro"
    shutil.copytree(
        PACKAGE_ROOT, root, ignore=shutil.ignore_patterns("__pycache__")
    )
    return root


class TestSelfCheck:
    def test_repo_source_tree_is_clean(self):
        report = run_check(PACKAGE_ROOT)
        assert report.findings == []
        assert report.files > 50  # the whole tree, not a stub scan

    def test_cli_default_path_exits_zero(self, capsys):
        assert main(["check"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_seeded_violation_fails_naming_rule_file_line(self, tmp_path, capsys):
        root = _copy_tree(tmp_path)
        seeded = root / "core" / "seeded.py"
        seeded.write_text("import time\n\n\ndef now():\n    return time.time()\n")
        assert main(["check", str(root)]) == 1
        out = capsys.readouterr().out
        assert "DET101" in out
        assert "core/seeded.py" in out
        assert ":5:" in out  # the offending line

    def test_seeded_layering_leak_fails(self, tmp_path, capsys):
        root = _copy_tree(tmp_path)
        leak = root / "crypto" / "leak.py"
        leak.write_text("from ..engine.runner import run_trial\n")
        assert main(["check", str(root)]) == 1
        assert "LAY201" in capsys.readouterr().out

    def test_json_artifact_round_trips(self, tmp_path, capsys):
        artifact = tmp_path / "check-report.json"
        assert main(["check", str(PACKAGE_ROOT), "--json", str(artifact)]) == 0
        import json

        payload = json.loads(artifact.read_text())
        assert payload["ok"] is True
        assert payload["findings"] == []
        assert payload["files_scanned"] > 50

    def test_repo_tree_has_zero_suppressions_and_stale_comments(self):
        # The gate is stricter than "no findings": nothing in the shipped
        # tree is waived, and SUP901 confirms no waiver comment lingers.
        report = run_check(PACKAGE_ROOT)
        assert report.suppressed == 0
        assert report.baselined == 0

    def test_fixer_is_a_noop_on_the_clean_tree(self, tmp_path):
        from repro.checks import fix_tree

        root = _copy_tree(tmp_path)
        result = fix_tree(root)
        assert result.applied == 0 and result.changed_files == []


class TestSeededNewFamilies:
    """Each new rule id must catch its violation seeded into the real tree."""

    def _seed(self, tmp_path, capsys, rel, source, rule):
        root = _copy_tree(tmp_path)
        target = root.joinpath(*rel.split("/"))
        target.write_text(source)
        assert main(["check", str(root)]) == 1
        out = capsys.readouterr().out
        assert rule in out
        assert rel in out

    def test_det201_argless_rng(self, tmp_path, capsys):
        self._seed(
            tmp_path, capsys, "core/seeded.py",
            "import random\n\n\ndef f():\n    return random.Random()\n",
            "DET201",
        )

    def test_det202_silent_fallback(self, tmp_path, capsys):
        self._seed(
            tmp_path, capsys, "core/seeded.py",
            "import random\n\n\ndef f(seed, rng=None):\n"
            "    rng = rng or random.Random(seed)\n"
            "    return rng\n\n\ndef g(rng=None):\n"
            "    rng = rng or random.Random()\n    return rng\n",
            "DET202",
        )

    def test_det203_module_rng(self, tmp_path, capsys):
        self._seed(
            tmp_path, capsys, "network/seeded.py",
            "import random\n\n_RNG = random.Random(0)\n",
            "DET203",
        )

    def test_vec501_unknown_protocol(self, tmp_path, capsys):
        self._seed(
            tmp_path, capsys, "engine/seeded.py",
            "from .registry import register_vector_model\n\n\n"
            "class _M:\n    pass\n\n\n"
            'register_vector_model("ba_phantom", None, _M)\n',
            "VEC501",
        )

    def test_vec502_impure_model(self, tmp_path, capsys):
        self._seed(
            tmp_path, capsys, "engine/seeded.py",
            "import time\n\nfrom .registry import register_vector_model\n\n\n"
            "class _M:\n    def run(self):\n        return time.time()\n\n\n"
            'register_vector_model("ba_one_third", None, _M)\n',
            "VEC502",
        )

    def test_vec503_novel_reason(self, tmp_path, capsys):
        self._seed(
            tmp_path, capsys, "engine/seeded.py",
            "def _novel_reason(spec):\n"
            '    return "a reason outside the vocabulary"\n',
            "VEC503",
        )

    def test_vec504_leaky_batch_key(self, tmp_path, capsys):
        root = _copy_tree(tmp_path)
        vectorized = root / "engine" / "vectorized.py"
        text = vectorized.read_text()
        assert 'seed=0, session=""' in text
        vectorized.write_text(text.replace('seed=0, session=""', "seed=0"))
        assert main(["check", str(root)]) == 1
        assert "VEC504" in capsys.readouterr().out

    def test_obs601_record_type_typo(self, tmp_path, capsys):
        root = _copy_tree(tmp_path)
        sinks = root / "obs" / "sinks.py"
        text = sinks.read_text()
        assert '{"t": "corr"' in text
        sinks.write_text(text.replace('{"t": "corr"', '{"t": "corrr"'))
        assert main(["check", str(root)]) == 1
        assert "OBS601" in capsys.readouterr().out

    def test_obs602_unknown_span(self, tmp_path, capsys):
        self._seed(
            tmp_path, capsys, "engine/seeded.py",
            "def run(tele):\n"
            '    tele.emit("run_strat", workers=1)\n',
            "OBS602",
        )

    def test_sup901_stale_waiver(self, tmp_path, capsys):
        self._seed(
            tmp_path, capsys, "core/seeded.py",
            "X = 1  # repro: noqa[DET101] nothing here reads a clock\n",
            "SUP901",
        )


class TestCliErrorPaths:
    def test_json_into_missing_directory_exits_two(self, capsys):
        code = main([
            "check", str(PACKAGE_ROOT),
            "--json", "/nonexistent-dir/report.json",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "cannot write" in err

    def test_sarif_into_missing_directory_exits_two(self, capsys):
        code = main([
            "check", str(PACKAGE_ROOT),
            "--sarif", "/nonexistent-dir/report.sarif",
        ])
        assert code == 2
        assert "cannot write" in capsys.readouterr().err

    def test_unreadable_source_path_exits_two(self, tmp_path, capsys):
        # A directory named like a module defeats read_text() even as
        # root (chmod tricks don't); the walk must fail loudly, not
        # traceback.
        root = _copy_tree(tmp_path)
        (root / "core" / "evil.py").mkdir()
        assert main(["check", str(root)]) == 2
        err = capsys.readouterr().err
        assert "cannot read" in err and "evil.py" in err

    def test_missing_baseline_file_exits_two(self, capsys):
        code = main([
            "check", str(PACKAGE_ROOT),
            "--baseline", "/nonexistent-dir/base.json",
        ])
        assert code == 2
        assert "baseline" in capsys.readouterr().err


class TestBaselineAndSarif:
    def test_baseline_demotes_known_findings(self, tmp_path, capsys):
        import json

        root = _copy_tree(tmp_path)
        seeded = root / "core" / "seeded.py"
        seeded.write_text("import time\nT = time.time()\n")
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps({
            "schema": "repro-check-baseline/1",
            "entries": [{
                "rule": "DET101",
                "path": "core/seeded.py",
                "message": "call to time.time() reads the wall clock",
            }],
        }))
        assert main(["check", str(root), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_sarif_artifact_structure(self, tmp_path):
        import json

        artifact = tmp_path / "report.sarif"
        assert main([
            "check", str(PACKAGE_ROOT), "--sarif", str(artifact),
        ]) == 0
        payload = json.loads(artifact.read_text())
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-check"
        assert run["results"] == []  # the tree is clean
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"DET201", "VEC501", "OBS601", "SUP901"} <= rule_ids

    def test_empty_repo_baseline_file_is_valid_and_empty(self):
        import json

        repo_root = PACKAGE_ROOT.parent.parent
        baseline = repo_root / "check-baseline.json"
        payload = json.loads(baseline.read_text())
        assert payload["schema"] == "repro-check-baseline/1"
        assert payload["entries"] == []
