"""The gate itself: `repro check` stays clean on this repository.

These tests are the CI contract: the first asserts the shipped source
tree has no violations (so any new finding fails the suite, not just
the separate `make check` leg); the second asserts the pass actually
*detects* — a copy of the real tree with one seeded `time.time()` in
`core/` must fail, naming the rule, file and line.
"""

import shutil
from pathlib import Path

import repro
from repro.checks import run_check
from repro.cli import main

PACKAGE_ROOT = Path(repro.__file__).parent


def _copy_tree(destination: Path) -> Path:
    root = destination / "repro"
    shutil.copytree(
        PACKAGE_ROOT, root, ignore=shutil.ignore_patterns("__pycache__")
    )
    return root


class TestSelfCheck:
    def test_repo_source_tree_is_clean(self):
        report = run_check(PACKAGE_ROOT)
        assert report.findings == []
        assert report.files > 50  # the whole tree, not a stub scan

    def test_cli_default_path_exits_zero(self, capsys):
        assert main(["check"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_seeded_violation_fails_naming_rule_file_line(self, tmp_path, capsys):
        root = _copy_tree(tmp_path)
        seeded = root / "core" / "seeded.py"
        seeded.write_text("import time\n\n\ndef now():\n    return time.time()\n")
        assert main(["check", str(root)]) == 1
        out = capsys.readouterr().out
        assert "DET101" in out
        assert "core/seeded.py" in out
        assert ":5:" in out  # the offending line

    def test_seeded_layering_leak_fails(self, tmp_path, capsys):
        root = _copy_tree(tmp_path)
        leak = root / "crypto" / "leak.py"
        leak.write_text("from ..engine.runner import run_trial\n")
        assert main(["check", str(root)]) == 1
        assert "LAY201" in capsys.readouterr().out

    def test_json_artifact_round_trips(self, tmp_path, capsys):
        artifact = tmp_path / "check-report.json"
        assert main(["check", str(PACKAGE_ROOT), "--json", str(artifact)]) == 0
        import json

        payload = json.loads(artifact.read_text())
        assert payload["ok"] is True
        assert payload["findings"] == []
        assert payload["files_scanned"] > 50
