"""Shared knobs for the chaos suite."""

from __future__ import annotations

import os


def examples(default: int) -> int:
    """Per-test hypothesis example count, overridable for CI.

    ``REPRO_CHAOS_EXAMPLES=N`` replaces every test's default with ``N``
    (floored at 1) — the CI chaos leg sets a small value for a bounded
    smoke pass; unset or unparsable values keep the test's own default,
    so a stray environment variable can never skip the suite.
    """
    raw = os.environ.get("REPRO_CHAOS_EXAMPLES", "").strip()
    if not raw:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        return default
