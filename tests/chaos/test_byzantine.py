"""Chaos testing: hypothesis-driven random Byzantine schedules.

Instead of hand-picked strategies, hypothesis draws an arbitrary *plan* —
per round, per corrupted party: follow the protocol, stay silent, replay a
stale message, flood garbage, or equivocate between two shadow runs; plus
one optional adaptive corruption at a random round.  Whatever the plan,
the protocol invariants must hold:

* BA validity (pre-agreement survives anything),
* BA consistency (honest outputs equal whenever the plan's power is
  within the protocol's corruption budget),
* Proxcensus Definition-2 consistency,
* no honest exception, ever.

This is the closest thing to an exhaustive adversary the test suite has:
every failure hypothesis finds shrinks to a minimal Byzantine schedule.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary.base import Adversary, RoundDecision, RoundView
from repro.core.ba import ba_one_half_program, ba_one_third_program
from repro.proxcensus.base import check_proxcensus_consistency
from repro.proxcensus.linear_half import prox_linear_half_program
from repro.proxcensus.one_third import prox_one_third_program

from ..conftest import run
from .conftest import examples

ACTIONS = ("follow", "silent", "garbage", "replay", "flip")


class PlannedAdversary(Adversary):
    """Executes a hypothesis-drawn plan of per-round actions."""

    def __init__(self, victims: List[int], plan: Dict[int, List[str]],
                 strike_round: Optional[int]) -> None:
        self.victims = victims
        self.plan = plan
        self.strike_round = strike_round
        self._struck = False
        self._stale: Dict[int, Dict[int, object]] = {}

    def initial_corruptions(self) -> Set[int]:
        return set(self.victims)

    def decide(self, view: RoundView) -> RoundDecision:
        decision = RoundDecision()
        rng = self.env.rng
        for pid in self.victims:
            actions = self.plan.get(pid, [])
            action = actions[(view.round_index - 1) % len(actions)] if actions else "follow"
            shadow = view.outboxes.get(pid, {})
            if action == "follow":
                pass  # keep shadow honest outbox
            elif action == "silent":
                decision.replace[pid] = None
            elif action == "garbage":
                decision.replace[pid] = {
                    r: rng.choice([None, 0, "x", {"v": object}, [1, 2]])
                    for r in range(self.env.num_parties)
                }
            elif action == "replay":
                decision.replace[pid] = self._stale.get(pid, dict(shadow)) or None
            elif action == "flip":
                # equivocate: swap payloads between recipient halves
                half = self.env.num_parties // 2
                low = {r: p for r, p in shadow.items() if r < half}
                high = {r: p for r, p in shadow.items() if r >= half}
                sample_low = next(iter(low.values()), None)
                sample_high = next(iter(high.values()), None)
                decision.replace[pid] = {
                    r: (sample_high if r < half else sample_low)
                    for r in range(self.env.num_parties)
                    if (sample_high if r < half else sample_low) is not None
                }
            self._stale[pid] = dict(shadow)
        if (
            self.strike_round is not None
            and not self._struck
            and view.round_index == self.strike_round
            and len(view.corrupted) < self.env.max_faulty
        ):
            honest = [p for p in range(self.env.num_parties) if p not in view.corrupted]
            if honest:
                self._struck = True
                decision.corrupt[honest[0]] = None
        return decision


plans = st.dictionaries(
    keys=st.integers(min_value=0, max_value=6),
    values=st.lists(st.sampled_from(ACTIONS), min_size=1, max_size=6),
    max_size=2,
)


@st.composite
def chaos_case(draw):
    inputs = draw(st.lists(st.integers(0, 1), min_size=4, max_size=7))
    plan = draw(plans)
    strike = draw(st.one_of(st.none(), st.integers(min_value=1, max_value=6)))
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    return inputs, plan, strike, seed


def _adversary_for(n: int, t: int, plan, strike) -> PlannedAdversary:
    reserve = 1 if strike is not None else 0
    victims = [pid for pid in sorted(plan) if pid < n][: max(0, t - reserve)]
    return PlannedAdversary(victims, {pid: plan[pid] for pid in victims}, strike)


class TestChaosBA:
    @given(case=chaos_case())
    @settings(
        max_examples=examples(40), deadline=None,
        suppress_health_check=[HealthCheck.data_too_large],
    )
    def test_one_third_ba_invariants(self, case):
        inputs, plan, strike, seed = case
        n = len(inputs)
        t = (n - 1) // 3
        adversary = _adversary_for(n, t, plan, strike)
        result = run(
            lambda c, b: ba_one_third_program(c, b, kappa=10),
            inputs, t, adversary=adversary, seed=seed, session=f"x{seed}",
        )
        honest = result.honest_outputs
        assert set(honest.values()) <= {0, 1}
        honest_inputs = {
            result.inputs[pid] for pid in result.honest_parties
        }
        if len(honest_inputs) == 1:
            assert set(honest.values()) == honest_inputs
        # At kappa=10 even the optimal attack fails with probability
        # <= 2^-10, and chaos plans are far weaker — assert agreement
        # outright (a counterexample would shrink to a reproducible
        # Byzantine schedule worth seeing).
        assert result.honest_agree()

    @given(case=chaos_case())
    @settings(
        max_examples=examples(30), deadline=None,
        suppress_health_check=[HealthCheck.data_too_large],
    )
    def test_one_half_ba_invariants(self, case):
        inputs, plan, strike, seed = case
        n = len(inputs)
        t = (n - 1) // 2
        adversary = _adversary_for(n, t, plan, strike)
        result = run(
            lambda c, b: ba_one_half_program(c, b, kappa=10),
            inputs, t, adversary=adversary, seed=seed, session=f"y{seed}",
        )
        honest_inputs = {result.inputs[pid] for pid in result.honest_parties}
        if len(honest_inputs) == 1:
            assert set(result.honest_outputs.values()) == honest_inputs
        assert result.honest_agree()


class TestChaosProxcensus:
    @given(case=chaos_case())
    @settings(
        max_examples=examples(30), deadline=None,
        suppress_health_check=[HealthCheck.data_too_large],
    )
    def test_one_third_proxcensus_definition2(self, case):
        inputs, plan, strike, seed = case
        n = len(inputs)
        t = (n - 1) // 3
        adversary = _adversary_for(n, t, plan, strike)
        result = run(
            lambda c, x: prox_one_third_program(c, x, rounds=3),
            inputs, t, adversary=adversary, seed=seed, session=f"p{seed}",
        )
        check_proxcensus_consistency(result.honest_outputs.values(), 9)

    @given(case=chaos_case())
    @settings(
        max_examples=examples(30), deadline=None,
        suppress_health_check=[HealthCheck.data_too_large],
    )
    def test_linear_half_proxcensus_definition2(self, case):
        inputs, plan, strike, seed = case
        n = len(inputs)
        t = (n - 1) // 2
        adversary = _adversary_for(n, t, plan, strike)
        result = run(
            lambda c, x: prox_linear_half_program(c, x, rounds=4),
            inputs, t, adversary=adversary, seed=seed, session=f"q{seed}",
        )
        check_proxcensus_consistency(result.honest_outputs.values(), 7)
