"""Crash-recover determinism through the engine, any worker count.

The acceptance bar for the fault layer: same seed + same fault plan ⇒
byte-identical results no matter how the trials are executed — serial,
pooled across processes (where each worker rebuilds the plan from the
spec's registry name), or through the vector backend (which must fall
back per-spec, since faulted specs are never vectorizable).
"""

from __future__ import annotations

import pytest

from repro.engine import ParallelRunner, TrialPlan, run_trial, vector_unsupported_reason

CRASH_PARAMS = {"crashes": ((1, 2, 4), (3, 1, 3))}


def _crash_plan(trials=12, seed=29):
    return TrialPlan.monte_carlo(
        name="chaos-crash",
        protocol="ba_one_third",
        inputs=(1, 0, 1, 0, 1),
        max_faulty=1,
        trials=trials,
        params={"kappa": 3},
        seed=seed,
        faults="crash_recover",
        fault_params=CRASH_PARAMS,
    )


class TestCrashRecoverDeterminism:
    def test_serial_and_pooled_results_are_byte_identical(self):
        plan = _crash_plan()
        serial = ParallelRunner(workers=1).run(plan)
        pooled = ParallelRunner(workers=2, chunk_size=5).run(plan)
        assert serial.results == pooled.results
        for mine, theirs in zip(serial.results, pooled.results):
            # RunMetrics equality plus the packed byte form: the wire
            # tallies are what cross the pool, so pin both.
            assert mine.metrics == theirs.metrics
            assert mine.metrics.as_tallies() == theirs.metrics.as_tallies()
            assert list(mine.outputs) == list(theirs.outputs)
            assert mine.finish_rounds == theirs.finish_rounds

    def test_vector_backend_falls_back_per_spec_identically(self):
        plan = _crash_plan(trials=6)
        # __post_init__ forces vectorizable=False for faulted specs, so
        # the eligibility probe reports the opt-out (the explicit fault
        # guard behind it is belt-and-suspenders).
        reason = vector_unsupported_reason(plan.trials[0])
        assert reason is not None
        vector = ParallelRunner(workers=1, backend="vector").run(plan)
        obj = ParallelRunner(workers=1).run(plan)
        assert vector.results == obj.results

    def test_faulted_spec_is_never_vectorizable(self):
        spec = _crash_plan(trials=1).trials[0]
        assert spec.vectorizable is False

    def test_crash_actually_bites(self):
        # Guard against a silently inert scenario: the plan must change
        # at least one trial relative to the fault-free baseline.
        faulty = _crash_plan(trials=6)
        clean = TrialPlan.monte_carlo(
            name="chaos-clean",
            protocol="ba_one_third",
            inputs=(1, 0, 1, 0, 1),
            max_faulty=1,
            trials=6,
            params={"kappa": 3},
            seed=29,
        )
        faulty_results = ParallelRunner(workers=1).run(faulty).results
        clean_results = ParallelRunner(workers=1).run(clean).results
        assert any(
            mine.metrics != theirs.metrics
            for mine, theirs in zip(faulty_results, clean_results)
        )

    @pytest.mark.parametrize("scenario, params", [
        ("lossy", {"rate": 0.2}),
        ("delaying", {"rate": 0.2, "max_delay": 2}),
        ("partitioned", {"groups": ((0, 1),), "start": 1, "heal": 3}),
        ("rotating_membership", {"epoch_length": 2, "disabled": ((0,), (4,))}),
        ("degraded", {"rate": 0.1, "split": (0, 1), "heal": 4}),
    ])
    def test_every_registered_scenario_replays_identically(
        self, scenario, params
    ):
        plan = TrialPlan.monte_carlo(
            name=f"chaos-{scenario}",
            protocol="ba_one_third",
            inputs=(1, 0, 1, 0, 1),
            max_faulty=1,
            trials=4,
            params={"kappa": 3},
            seed=31,
            faults=scenario,
            fault_params=params,
        )
        spec = plan.trials[0]
        assert run_trial(spec) == run_trial(spec)
        serial = ParallelRunner(workers=1).run(plan)
        pooled = ParallelRunner(workers=2, chunk_size=2).run(plan)
        assert serial.results == pooled.results
