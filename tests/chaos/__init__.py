"""Chaos suite: randomized Byzantine schedules and network fault plans.

Hypothesis draws the adversity — per-round Byzantine actions in
``test_byzantine``, network fault plans (loss, delay, partitions,
crashes, membership rotation) in ``test_faults``, and their
cross-worker determinism in ``test_crash_recovery``.  Example counts
are bounded by ``REPRO_CHAOS_EXAMPLES`` (see ``conftest.examples``)
so CI can run a quick leg while local runs keep the deeper defaults.
"""
