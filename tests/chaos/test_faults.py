"""Chaos testing: hypothesis-drawn network fault plans.

The Byzantine suite (``test_byzantine``) draws adversarial *parties*;
this one draws adversarial *networks* — arbitrary combinations of
message loss, delay, healing partitions, crash-recover windows and
membership rotation — and asserts the properties that must survive any
of them:

* no honest party ever raises (fixed-round programs terminate on empty
  inboxes; crashed parties keep running and recover cleanly),
* honest outputs stay in the protocol's domain,
* the run is a pure function of ``(seed, plan)`` — replaying is
  byte-identical,
* a no-op plan is indistinguishable from ``faults=None``.

Deliberately *not* asserted: agreement.  Faults break the synchrony
assumption the paper's proofs live in; how much they break it is the
degradation question ``benchmarks/bench_fault_tolerance.py`` measures,
not an invariant.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ba import ba_one_third_program
from repro.network.faults import Crash, FaultPlan, Partition
from repro.network.simulator import SyncSimulator

from ..conftest import ideal_suite
from .conftest import examples

MAX_PARTIES = 7


@st.composite
def fault_plans(draw, num_parties=MAX_PARTIES):
    loss = draw(st.sampled_from((0.0, 0.05, 0.15, 0.3, 0.5)))
    delay = draw(st.sampled_from((0.0, 0.1, 0.25, 0.5)))
    max_delay = draw(st.integers(min_value=1, max_value=3))

    partitions = ()
    if draw(st.booleans()):
        group = draw(
            st.sets(
                st.integers(0, num_parties - 1),
                min_size=1, max_size=num_parties - 1,
            )
        )
        start = draw(st.integers(min_value=1, max_value=4))
        heal = draw(
            st.one_of(
                st.none(),
                st.integers(min_value=start + 1, max_value=start + 4),
            )
        )
        partitions = (
            Partition(groups=(tuple(sorted(group)),), start=start, heal=heal),
        )

    crash_seeds = draw(
        st.lists(
            st.tuples(
                st.integers(0, num_parties - 1),  # pid
                st.integers(1, 5),                # down
                st.integers(1, 3),                # window length
            ),
            max_size=2,
            unique_by=lambda entry: entry[0],
        )
    )
    crashes = tuple(
        Crash(pid=pid, down=down, up=down + length)
        for pid, down, length in crash_seeds
    )

    epoch_length = 0
    disabled = ()
    if draw(st.booleans()):
        epoch_length = draw(st.integers(min_value=1, max_value=3))
        disabled = tuple(
            tuple(sorted(draw(
                st.sets(st.integers(0, num_parties - 1), max_size=2)
            )))
            for _ in range(draw(st.integers(min_value=1, max_value=3)))
        )
        if not any(disabled):
            epoch_length, disabled = 0, ()

    return FaultPlan(
        loss=loss,
        delay=delay,
        max_delay=max_delay,
        partitions=partitions,
        crashes=crashes,
        epoch_length=epoch_length,
        disabled=disabled,
    )


@st.composite
def fault_cases(draw):
    inputs = draw(st.lists(st.integers(0, 1), min_size=4, max_size=MAX_PARTIES))
    plan = draw(fault_plans(num_parties=len(inputs)))
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    return tuple(inputs), plan, seed


def _run(inputs, plan, seed, session="chaos-net"):
    n = len(inputs)
    t = (n - 1) // 3
    simulator = SyncSimulator(
        num_parties=n,
        max_faulty=t,
        crypto=ideal_suite(n, t),
        seed=seed,
        session=session,
        faults=plan,
    )
    result = simulator.run(
        lambda ctx, value: ba_one_third_program(ctx, value, kappa=3), inputs
    )
    return result, simulator.last_fault_counts


class TestFaultChaos:
    @given(case=fault_cases())
    @settings(
        max_examples=examples(40), deadline=None,
        suppress_health_check=[HealthCheck.data_too_large],
    )
    def test_any_fault_plan_terminates_with_binary_outputs(self, case):
        inputs, plan, seed = case
        result, counts = _run(inputs, plan, seed)
        # Every party ran to completion — no honest exception, even for
        # parties that spent rounds crashed or partitioned away.
        assert sorted(result.outputs) == list(range(len(inputs)))
        assert set(result.outputs.values()) <= {0, 1}
        # Validity degrades gracefully, never into garbage: with a
        # unanimous input and zero suppression, pre-agreement survives.
        if len(set(inputs)) == 1 and counts.suppressed == 0:
            assert set(result.outputs.values()) == set(inputs)

    @given(case=fault_cases())
    @settings(
        max_examples=examples(25), deadline=None,
        suppress_health_check=[HealthCheck.data_too_large],
    )
    def test_same_seed_and_plan_replay_byte_identically(self, case):
        inputs, plan, seed = case
        first, counts_a = _run(inputs, plan, seed)
        second, counts_b = _run(inputs, plan, seed)
        assert first == second
        assert counts_a == counts_b
        assert list(first.outputs) == list(second.outputs)
        assert first.metrics.as_tallies() == second.metrics.as_tallies()

    @given(
        inputs=st.lists(st.integers(0, 1), min_size=4, max_size=MAX_PARTIES),
        seed=st.integers(min_value=0, max_value=2 ** 16),
    )
    @settings(max_examples=examples(15), deadline=None)
    def test_noop_plan_matches_faults_none(self, inputs, seed):
        inputs = tuple(inputs)
        baseline, _ = _run(inputs, None, seed)
        noop, counts = _run(inputs, FaultPlan(), seed)
        assert noop == baseline
        assert counts.suppressed == 0 and counts.delayed == 0
