"""Every example script must keep running green (executed in-process)."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST = [
    "quickstart.py",
    "blockchain_committee.py",
    "proxcast_demo.py",
    "traced_iteration.py",
]
SLOW = [
    "adversary_lab.py",
    "coin_flavors.py",
    "real_crypto_backend.py",
    "replicated_ledger.py",
    "round_complexity_comparison.py",
]


def run_example(name):
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


@pytest.mark.parametrize("name", FAST)
def test_fast_examples(name, capsys):
    run_example(name)
    assert capsys.readouterr().out  # produced output, raised nothing


@pytest.mark.slow
@pytest.mark.parametrize("name", SLOW)
def test_slow_examples(name, capsys):
    run_example(name)
    assert capsys.readouterr().out


def test_every_example_is_listed():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(FAST) | set(SLOW)
