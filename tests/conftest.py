"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.crypto.keys import CryptoSuite
from repro.network.simulator import SyncSimulator

# Dealt once per session: ideal suites are cheap but there is no reason to
# re-deal hundreds of times across tests with the same (n, t).
_SUITE_CACHE = {}


def ideal_suite(num_parties: int, max_faulty: int) -> CryptoSuite:
    key = (num_parties, max_faulty)
    if key not in _SUITE_CACHE:
        _SUITE_CACHE[key] = CryptoSuite.ideal(
            num_parties, max_faulty, random.Random(hash(key) & 0xFFFF)
        )
    return _SUITE_CACHE[key]


def run(factory, inputs, max_faulty, adversary=None, seed=0, session="t", crypto=None):
    """Run a protocol on cached ideal keys; returns the ExecutionResult."""
    num_parties = len(inputs)
    simulator = SyncSimulator(
        num_parties=num_parties,
        max_faulty=max_faulty,
        crypto=crypto or ideal_suite(num_parties, max_faulty),
        adversary=adversary,
        seed=seed,
        session=session,
    )
    return simulator.run(factory, inputs)


@pytest.fixture
def rng():
    return random.Random(0xDEC0DE)
