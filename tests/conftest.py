"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.crypto.keys import CryptoSuite
from repro.network.simulator import SyncSimulator

# Dealt once per session: ideal suites are cheap but there is no reason to
# re-deal hundreds of times across tests with the same (n, t).
_SUITE_CACHE = {}


def ideal_suite(num_parties: int, max_faulty: int) -> CryptoSuite:
    key = (num_parties, max_faulty)
    if key not in _SUITE_CACHE:
        _SUITE_CACHE[key] = CryptoSuite.ideal(
            num_parties, max_faulty, random.Random(hash(key) & 0xFFFF)
        )
    return _SUITE_CACHE[key]


def run(factory, inputs, max_faulty, adversary=None, seed=0, session="t", crypto=None):
    """Run a protocol on cached ideal keys; returns the ExecutionResult."""
    num_parties = len(inputs)
    simulator = SyncSimulator(
        num_parties=num_parties,
        max_faulty=max_faulty,
        crypto=crypto or ideal_suite(num_parties, max_faulty),
        adversary=adversary,
        seed=seed,
        session=session,
    )
    return simulator.run(factory, inputs)


@pytest.fixture
def rng():
    return random.Random(0xDEC0DE)


# Per-protocol sweep shapes for every *stock* registered protocol:
# (inputs, max_faulty, params).  Shared by the transport losslessness
# matrix (tests/engine/test_transport.py) and the trace round-trip
# property (tests/obs/test_replay.py) — one table, so a protocol added
# to the registry without a shape fails both suites loudly.
PROTOCOL_SHAPES = {
    "ba_one_third": ((0, 0, 1, 1), 1, {"kappa": 2}),
    "ba_one_half": ((0, 0, 1, 1, 1), 2, {"kappa": 2}),
    "feldman_micali": ((0, 0, 1, 1), 1, {"kappa": 2}),
    "micali_vaikuntanathan": ((0, 0, 1, 1, 1), 2, {"kappa": 2}),
    "mv_pki": ((0, 0, 1, 1, 1), 2, {"kappa": 2}),
    "dolev_strong": ((0, 0, 1, 1), 1, {}),
    "fm_probabilistic": ((0, 0, 1, 1), 1, {}),
    "prox_one_third": ((0, 1, 2, 3), 1, {"rounds": 3}),
    "prox_linear_half": ((0, 1, 2, 3, 4), 2, {"rounds": 3}),
    "prox_quadratic_half": ((0, 1, 2, 3, 4), 2, {"rounds": 3}),
    "turpin_coan_classic": (("a", "b", "c", "a"), 1, {"kappa": 2}),
    "multivalued_ba": (("a", "b", "c", "a"), 1, {"kappa": 2}),
    "vrf_coin": ((None, None, None, None), 1, {"index": 0}),
    "threshold_coin": ((None, None, None, None), 1, {"index": 0}),
    "prox_expand_once": (((1, 0), (1, 1), (1, 1), (1, 0)), 1, {"slots": 4}),
    "proxcast": (("v", "v", "v", "v"), 1, {"slots": 4, "dealer": 0}),
    "certificate_gradecast": (("v",) * 5, 2, {"dealer": 0}),
    "ba_one_third_chunked": ((0, 0, 1, 1), 1, {"kappa": 4, "chunk": 2}),
    "ba_one_half_generalized": ((0, 0, 1, 1, 1), 2, {"kappa": 3}),
}
