"""Tests for the closed-form theory module."""

from fractions import Fraction

import pytest

from repro.analysis.theory import (
    PROTOCOLS,
    efficiency_comparison_rows,
    error_for_rounds,
    per_iteration_failure,
    rounds_for_error,
)


class TestRoundFormulas:
    @pytest.mark.parametrize(
        "protocol,kappa,rounds",
        [
            ("ours_one_third", 8, 9),
            ("ours_one_third", 64, 65),
            ("ours_one_half", 8, 12),
            ("ours_one_half", 9, 15),
            ("feldman_micali", 8, 16),
            ("micali_vaikuntanathan", 8, 16),
        ],
    )
    def test_paper_round_counts(self, protocol, kappa, rounds):
        assert rounds_for_error(protocol, kappa) == rounds

    def test_round_formulas_match_protocol_modules(self):
        from repro.core.ba import rounds_one_half, rounds_one_third
        from repro.core.feldman_micali import rounds_feldman_micali
        from repro.core.micali_vaikuntanathan import rounds_mv

        for kappa in (1, 2, 7, 16, 31):
            assert rounds_for_error("ours_one_third", kappa) == rounds_one_third(kappa)
            assert rounds_for_error("ours_one_half", kappa) == rounds_one_half(kappa)
            assert rounds_for_error("feldman_micali", kappa) == rounds_feldman_micali(kappa)
            assert rounds_for_error("micali_vaikuntanathan", kappa) == rounds_mv(kappa)

    def test_error_for_rounds_inverts(self):
        for protocol in PROTOCOLS:
            for kappa in (2, 8, 16):
                rounds = rounds_for_error(protocol, kappa)
                assert error_for_rounds(protocol, rounds) >= kappa


class TestFailureProbability:
    def test_theorem1_formula(self):
        assert per_iteration_failure(3) == Fraction(1, 2)
        assert per_iteration_failure(5) == Fraction(1, 4)
        assert per_iteration_failure(2 ** 10 + 1) == Fraction(1, 2 ** 10)

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            per_iteration_failure(1)


class TestComparisonTable:
    def test_asymptotic_speedups(self):
        rows = efficiency_comparison_rows([64])
        row = rows[0]
        assert row["speedup_one_third"] == Fraction(128, 65)  # -> 2x
        assert row["speedup_one_half"] == Fraction(4, 3)      # -> 1.33x

    def test_speedup_approaches_two(self):
        big = efficiency_comparison_rows([1024])[0]
        assert abs(float(big["speedup_one_third"]) - 2.0) < 0.01
