"""Test package."""
