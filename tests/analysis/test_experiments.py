"""Tests for the Monte-Carlo experiment drivers."""

import pytest

from repro.adversary.strategies import TwoFaceAdversary
from repro.analysis.experiments import (
    ExperimentSetup,
    disagreement_rate,
    measure_execution,
    run_trials,
    slot_occupancy,
)
from repro.core.ba import ba_one_third_program
from repro.proxcensus.one_third import prox_one_third_program


def prox(ctx, x):
    return prox_one_third_program(ctx, x, rounds=2)


def ba(ctx, b):
    return ba_one_third_program(ctx, b, kappa=4)


class TestRunTrials:
    def test_trials_are_distinct_executions(self):
        setup = ExperimentSetup(num_parties=4, max_faulty=1)
        results = run_trials(setup, ba, [0, 1, 0, 1], trials=6)
        assert len(results) == 6
        # Coins differ across trials (distinct sessions), so outputs vary
        # across enough trials.
        outcomes = {tuple(sorted(r.outputs.items())) for r in results}
        assert len(outcomes) >= 2

    def test_deterministic_given_seed(self):
        setup = ExperimentSetup(num_parties=4, max_faulty=1)
        a = run_trials(setup, ba, [0, 1, 0, 1], trials=3, seed=5)
        b = run_trials(setup, ba, [0, 1, 0, 1], trials=3, seed=5)
        assert [r.outputs for r in a] == [r.outputs for r in b]


class TestDisagreementRate:
    def test_zero_for_validity_runs(self):
        setup = ExperimentSetup(num_parties=4, max_faulty=1)
        results = run_trials(setup, ba, [1, 1, 1, 1], trials=5)
        assert disagreement_rate(results) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            disagreement_rate([])


class TestMeasureExecution:
    def test_reports_all_metrics(self):
        setup = ExperimentSetup(num_parties=4, max_faulty=1)
        measured = measure_execution(setup, ba, [0, 1, 0, 1])
        assert measured["rounds"] == 5  # kappa + 1
        assert measured["honest_messages"] > 0
        assert measured["total_signatures"] >= measured["honest_signatures"]


class TestSlotOccupancy:
    def test_pre_agreement_occupies_one_extremal_slot(self):
        setup = ExperimentSetup(num_parties=4, max_faulty=1)
        occupancy = slot_occupancy(setup, prox, 5, [1, 1, 1, 1], trials=4)
        assert set(occupancy) == {4}  # rightmost slot of Prox_5

    def test_adversarial_runs_stay_adjacent_per_execution(self):
        setup = ExperimentSetup(num_parties=4, max_faulty=1)
        occupancy = slot_occupancy(
            setup,
            prox,
            5,
            [0, 0, 1, 1],
            trials=8,
            adversary_factory=lambda: TwoFaceAdversary(victims=[3], factory=prox),
        )
        assert sum(occupancy.values()) == 8 * 3  # 3 honest parties per trial
