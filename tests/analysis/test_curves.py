"""Tests for the ASCII curve renderers."""

import pytest

from repro.analysis.curves import bar_chart, log_sparkline, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_is_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_series_is_monotone(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert line == "".join(sorted(line))
        assert line[0] == "▁" and line[-1] == "█"

    def test_length_preserved(self):
        assert len(sparkline(range(17))) == 17


class TestLogSparkline:
    def test_exponential_decay_renders_linear(self):
        values = [2.0 ** -k for k in range(1, 9)]
        line = log_sparkline(values)
        # strictly decreasing blocks (log-linear)
        assert line == "".join(sorted(line, reverse=True))

    def test_zero_clamps_to_floor(self):
        line = log_sparkline([0.5, 0.0])
        assert len(line) == 2
        assert line[1] == "▁"


class TestBarChart:
    def test_empty(self):
        assert bar_chart([]) == ""

    def test_labels_and_values_present(self):
        chart = bar_chart([("ours", 9.0), ("fm", 16.0)], width=10, unit=" rounds")
        assert "ours" in chart and "fm" in chart
        assert "16 rounds" in chart
        lines = chart.splitlines()
        assert lines[1].count("█") == 10      # the max fills the width
        assert 4 <= lines[0].count("█") <= 7  # 9/16 of the width

    def test_zero_peak_does_not_divide_by_zero(self):
        assert bar_chart([("a", 0.0)]) != ""
