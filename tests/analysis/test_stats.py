"""Tests for the Monte-Carlo statistics helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    SequentialEstimate,
    format_rate,
    wilson_interval,
    within_interval,
)


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.3 < high

    def test_degenerate_extremes_are_bounded(self):
        low, high = wilson_interval(0, 50)
        assert low <= 1e-12 and 0 < high < 0.15
        low, high = wilson_interval(50, 50)
        assert 0.85 < low < 1 and high >= 1.0 - 1e-12

    def test_shrinks_with_trials(self):
        narrow = wilson_interval(300, 1000)
        wide = wilson_interval(30, 100)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    @given(
        trials=st.integers(min_value=1, max_value=10_000),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_interval_is_ordered_and_in_unit_range(self, trials, data):
        successes = data.draw(st.integers(min_value=0, max_value=trials))
        low, high = wilson_interval(successes, trials)
        estimate = successes / trials
        assert 0.0 <= low <= high <= 1.0
        assert low - 1e-12 <= estimate <= high + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)


class TestHelpers:
    def test_within_interval(self):
        assert within_interval(0.25, 25, 100)
        assert not within_interval(0.9, 25, 100)

    def test_format_rate(self):
        text = format_rate(25, 100)
        assert text.startswith("0.2500 [")
        assert text.endswith("]")


class TestSequentialEstimate:
    def test_starts_undecided_with_vacuous_interval(self):
        estimate = SequentialEstimate(bound=0.25)
        assert estimate.interval == (0.0, 1.0)
        assert estimate.width == 1.0
        assert estimate.status == "undecided"
        assert not estimate.decided
        assert estimate.accepted  # no evidence of violation yet

    def test_separates_below_the_bound(self):
        estimate = SequentialEstimate(bound=0.5)
        estimate.update(5, 100)  # rate 0.05, interval well under 0.5
        assert estimate.status == "below"
        assert estimate.decided
        assert estimate.accepted

    def test_separates_above_the_bound(self):
        estimate = SequentialEstimate(bound=0.05)
        estimate.update(50, 100)  # rate 0.5, interval well over 0.05
        assert estimate.status == "above"
        assert estimate.decided
        assert not estimate.accepted

    def test_confidently_contains_the_tight_bound(self):
        # The straddle-adversary case: the measured rate realizes the
        # bound exactly, so exclusion never happens — only containment
        # (bound inside a sufficiently narrow interval) can decide.
        estimate = SequentialEstimate(bound=0.25)
        estimate.update(50, 200)
        low, high = estimate.interval
        assert low <= 0.25 <= high
        assert high - low <= estimate.precision
        assert estimate.status == "contained"
        assert estimate.accepted

    def test_min_trials_gates_every_decision(self):
        estimate = SequentialEstimate(bound=0.5, min_trials=64)
        estimate.update(0, 63)  # would be a clear "below" otherwise
        assert estimate.status == "undecided"
        estimate.observe(False)
        assert estimate.status == "below"

    def test_batching_is_irrelevant(self):
        batched = SequentialEstimate(bound=0.25)
        batched.update(30, 120)
        streamed = SequentialEstimate(bound=0.25)
        for index in range(120):
            streamed.observe(index % 4 == 0)
        assert streamed.hits == batched.hits
        assert streamed.trials == batched.trials
        assert streamed.interval == batched.interval
        assert streamed.status == batched.status

    def test_min_hits_gates_rare_event_violation_claims(self):
        # Three failures clustered in the first 50 trials of a
        # bound=2^-8 config push the Wilson low end over the bound, but
        # with fewer than min_hits occurrences that must not read as a
        # proven violation (the prefix-clustering artifact: the same
        # config at 3/300 is comfortably accepted).
        estimate = SequentialEstimate(bound=2.0 ** -8, min_trials=32)
        estimate.update(3, 50)
        low, _high = estimate.interval
        assert low > estimate.bound  # interval alone would exclude
        assert estimate.status == "undecided"
        assert estimate.accepted
        # More evidence at the same rate does cross the floor.
        estimate.update(3, 50)
        assert estimate.hits >= estimate.min_hits
        assert estimate.status == "above"
        assert not estimate.accepted
        with pytest.raises(ValueError, match="min_hits"):
            SequentialEstimate(bound=0.5, min_hits=0)

    def test_width_is_the_noise_ranking_key(self):
        noisy = SequentialEstimate(bound=0.25)
        noisy.update(10, 40)
        settled = SequentialEstimate(bound=0.25)
        settled.update(100, 400)
        assert noisy.width > settled.width

    def test_validation(self):
        with pytest.raises(ValueError, match="bound"):
            SequentialEstimate(bound=1.5)
        with pytest.raises(ValueError, match="min_trials"):
            SequentialEstimate(bound=0.5, min_trials=0)
        with pytest.raises(ValueError, match="precision"):
            SequentialEstimate(bound=0.5, precision=-0.1)
        estimate = SequentialEstimate(bound=0.5)
        with pytest.raises(ValueError, match="hits"):
            estimate.update(5, 3)
        with pytest.raises(ValueError, match="hits"):
            estimate.update(-1, 3)
