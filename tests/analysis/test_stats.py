"""Tests for the Monte-Carlo statistics helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import format_rate, wilson_interval, within_interval


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.3 < high

    def test_degenerate_extremes_are_bounded(self):
        low, high = wilson_interval(0, 50)
        assert low <= 1e-12 and 0 < high < 0.15
        low, high = wilson_interval(50, 50)
        assert 0.85 < low < 1 and high >= 1.0 - 1e-12

    def test_shrinks_with_trials(self):
        narrow = wilson_interval(300, 1000)
        wide = wilson_interval(30, 100)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    @given(
        trials=st.integers(min_value=1, max_value=10_000),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_interval_is_ordered_and_in_unit_range(self, trials, data):
        successes = data.draw(st.integers(min_value=0, max_value=trials))
        low, high = wilson_interval(successes, trials)
        estimate = successes / trials
        assert 0.0 <= low <= high <= 1.0
        assert low - 1e-12 <= estimate <= high + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)


class TestHelpers:
    def test_within_interval(self):
        assert within_interval(0.25, 25, 100)
        assert not within_interval(0.9, 25, 100)

    def test_format_rate(self):
        text = format_rate(25, 100)
        assert text.startswith("0.2500 [")
        assert text.endswith("]")
