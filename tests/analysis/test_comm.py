"""Measured message counts equal the exact predictions (constants included)."""

import pytest

from repro.analysis.comm import (
    messages_ba_one_half,
    messages_ba_one_third,
    messages_feldman_micali,
    messages_mv,
    messages_prox_linear_half,
    messages_prox_one_third,
    messages_prox_quadratic_half,
    messages_proxcast,
)
from repro.core.ba import ba_one_half_program, ba_one_third_program
from repro.core.feldman_micali import feldman_micali_program
from repro.core.micali_vaikuntanathan import micali_vaikuntanathan_program
from repro.proxcensus.linear_half import prox_linear_half_program
from repro.proxcensus.one_third import prox_one_third_program
from repro.proxcensus.proxcast import proxcast_program
from repro.proxcensus.quadratic_half import prox_quadratic_half_program

from ..conftest import run


class TestProxcensusCounts:
    @pytest.mark.parametrize("n,t,rounds", [(4, 1, 1), (4, 1, 3), (7, 2, 4)])
    def test_one_third(self, n, t, rounds):
        res = run(
            lambda c, x: prox_one_third_program(c, x, rounds=rounds),
            [i % 2 for i in range(n)], t, session=f"c13-{n}-{rounds}",
        )
        assert res.metrics.honest_messages == messages_prox_one_third(n, rounds)

    @pytest.mark.parametrize("n,t,rounds", [(5, 2, 2), (5, 2, 4), (9, 4, 3)])
    def test_linear_half(self, n, t, rounds):
        res = run(
            lambda c, x: prox_linear_half_program(c, x, rounds=rounds),
            [i % 2 for i in range(n)], t, session=f"clh-{n}-{rounds}",
        )
        assert res.metrics.honest_messages == messages_prox_linear_half(n, rounds)

    @pytest.mark.parametrize("n,t,rounds", [(5, 2, 3), (5, 2, 6)])
    def test_quadratic_half(self, n, t, rounds):
        res = run(
            lambda c, x: prox_quadratic_half_program(c, x, rounds=rounds),
            [i % 2 for i in range(n)], t, session=f"cqh-{n}-{rounds}",
        )
        assert res.metrics.honest_messages == messages_prox_quadratic_half(
            n, rounds
        )

    @pytest.mark.parametrize("n,slots", [(4, 3), (4, 5), (6, 4)])
    def test_proxcast(self, n, slots):
        res = run(
            lambda c, x: proxcast_program(c, x, slots=slots, dealer=0),
            ["v"] * n, n - 1, session=f"cpx-{n}-{slots}",
        )
        assert res.metrics.honest_messages == messages_proxcast(n, slots)


class TestBACounts:
    @pytest.mark.parametrize("n,t,kappa", [(4, 1, 4), (4, 1, 9), (7, 2, 6)])
    def test_ba_one_third(self, n, t, kappa):
        res = run(
            lambda c, b: ba_one_third_program(c, b, kappa),
            [i % 2 for i in range(n)], t, session=f"cb13-{n}-{kappa}",
        )
        assert res.metrics.honest_messages == messages_ba_one_third(n, kappa)

    @pytest.mark.parametrize("n,t,kappa", [(5, 2, 4), (5, 2, 7)])
    def test_ba_one_half(self, n, t, kappa):
        res = run(
            lambda c, b: ba_one_half_program(c, b, kappa),
            [i % 2 for i in range(n)], t, session=f"cb12-{n}-{kappa}",
        )
        assert res.metrics.honest_messages == messages_ba_one_half(n, kappa)

    def test_feldman_micali(self):
        res = run(
            lambda c, b: feldman_micali_program(c, b, 4),
            [0, 1, 0, 1], 1, session="cfm",
        )
        assert res.metrics.honest_messages == messages_feldman_micali(4, 4)

    def test_mv(self):
        res = run(
            lambda c, b: micali_vaikuntanathan_program(c, b, 4),
            [0, 1, 0, 1, 1], 2, session="cmv",
        )
        assert res.metrics.honest_messages == messages_mv(5, 4)

    def test_the_headline_constant(self):
        """The paper's O(κn²): the constant is exactly 1 message per pair
        per round — ours t<n/3 sends (κ+1)n², not c·κn² for hidden c."""
        n, kappa = 4, 16
        res = run(
            lambda c, b: ba_one_third_program(c, b, kappa),
            [1, 0, 1, 0], 1, session="chc",
        )
        assert res.metrics.honest_messages == (kappa + 1) * n * n
