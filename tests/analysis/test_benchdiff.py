"""Benchmark-diff gate: per-core rates plus per-figure vector metrics."""

import pytest

from repro.analysis.benchdiff import compare_benchmarks, format_bench_report


def artifact(serial=10.0, vector=None, figures=None, trials=1000):
    payload = {
        "plan": {"name": "t", "trials": trials},
        "serial_seconds": serial,
    }
    if vector is not None:
        payload["vector_seconds"] = vector
    if figures is not None:
        payload["figures"] = figures
    return payload


def figure(seconds, trials=100):
    return {"trials": trials, "vector_seconds": seconds}


class TestCoreMetrics:
    def test_equal_artifacts_pass(self):
        report = compare_benchmarks(artifact(), artifact())
        assert report["ok"]

    def test_serial_regression_fails(self):
        report = compare_benchmarks(artifact(serial=10.0), artifact(serial=20.0))
        assert not report["ok"]
        assert report["regressed"] == ["serial"]

    def test_missing_vector_leg_skips(self):
        report = compare_benchmarks(
            artifact(vector=None), artifact(vector=1.0)
        )
        rows = {row["metric"]: row for row in report["metrics"]}
        assert rows["vector"]["status"] == "skipped"
        assert report["ok"]

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            compare_benchmarks(artifact(), artifact(), threshold=1.5)


class TestFigureMetrics:
    def test_matching_figures_compared_ok(self):
        base = artifact(figures={"fig1": figure(0.5)})
        cand = artifact(figures={"fig1": figure(0.55)})
        report = compare_benchmarks(base, cand)
        rows = {row["metric"]: row for row in report["metrics"]}
        assert rows["figure:fig1"]["status"] == "ok"
        assert report["ok"]

    def test_figure_vector_regression_fails(self):
        base = artifact(figures={"fig1": figure(0.5)})
        cand = artifact(figures={"fig1": figure(2.0)})
        report = compare_benchmarks(base, cand)
        assert not report["ok"]
        assert report["regressed"] == ["figure:fig1"]
        assert "figure:fig1" in format_bench_report(report)

    def test_figure_missing_from_baseline_skips(self):
        # Older committed baselines predate the --figures leg: a new
        # figure must not break the gate until a baseline records it.
        base = artifact()
        cand = artifact(figures={"brand_new": figure(0.1)})
        report = compare_benchmarks(base, cand)
        rows = {row["metric"]: row for row in report["metrics"]}
        assert rows["figure:brand_new"]["status"] == "skipped"
        assert report["ok"]

    def test_malformed_figure_entry_skips(self):
        base = artifact(figures={"fig1": figure(0.5)})
        cand = artifact(figures={"fig1": {"trials": 0, "vector_seconds": 0.5}})
        report = compare_benchmarks(base, cand)
        rows = {row["metric"]: row for row in report["metrics"]}
        assert rows["figure:fig1"]["status"] == "skipped"
        assert report["ok"]


class TestSchemaValidation:
    """``load_bench`` gates on the ``schema`` field (absent = legacy OK)."""

    def _write(self, tmp_path, payload, name="bench.json"):
        import json

        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_declared_repro_bench_schema_loads(self, tmp_path):
        from repro.analysis.benchdiff import load_bench

        payload = artifact()
        payload["schema"] = "repro-bench/1"
        loaded = load_bench(self._write(tmp_path, payload))
        assert loaded["schema"] == "repro-bench/1"

    def test_faults_family_schema_loads(self, tmp_path):
        from repro.analysis.benchdiff import load_bench

        payload = artifact()
        payload["schema"] = "repro-bench-faults/1"
        assert load_bench(self._write(tmp_path, payload))["plan"]["name"] == "t"

    def test_legacy_artifact_without_schema_loads(self, tmp_path):
        from repro.analysis.benchdiff import load_bench

        assert "schema" not in load_bench(self._write(tmp_path, artifact()))

    def test_foreign_schema_rejected(self, tmp_path):
        from repro.analysis.benchdiff import load_bench

        payload = artifact()
        payload["schema"] = "repro-metrics/1"
        with pytest.raises(ValueError, match="repro-bench"):
            load_bench(self._write(tmp_path, payload))

    def test_non_string_schema_rejected(self, tmp_path):
        from repro.analysis.benchdiff import load_bench

        payload = artifact()
        payload["schema"] = 7
        with pytest.raises(ValueError, match="repro-bench"):
            load_bench(self._write(tmp_path, payload))


class TestUnknownKeyTolerance:
    def test_unknown_top_level_keys_skip_not_fail(self):
        # A newer producer may add top-level keys this reader has never
        # heard of; the diff must compare the keys it knows and ignore
        # the rest, not crash or fail the gate.
        base = artifact()
        cand = artifact()
        cand["schema"] = "repro-bench/1"
        cand["a_future_top_level_key"] = {"nested": ["stuff", 1, None]}
        cand["another_one"] = 42.5
        report = compare_benchmarks(base, cand)
        assert report["ok"]
        assert {row["metric"] for row in report["metrics"]} >= {"serial"}

    def test_diff_bench_files_end_to_end(self, tmp_path):
        import json

        from repro.analysis.benchdiff import diff_bench_files

        base = artifact()
        cand = artifact()
        cand["schema"] = "repro-bench/1"
        cand["brand_new_section"] = {"k": "v"}
        base_path = tmp_path / "base.json"
        cand_path = tmp_path / "cand.json"
        base_path.write_text(json.dumps(base))
        cand_path.write_text(json.dumps(cand))
        report = diff_bench_files(str(base_path), str(cand_path))
        assert report["ok"]
