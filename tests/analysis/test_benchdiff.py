"""Benchmark-diff gate: per-core rates plus per-figure vector metrics."""

import pytest

from repro.analysis.benchdiff import compare_benchmarks, format_bench_report


def artifact(serial=10.0, vector=None, figures=None, trials=1000):
    payload = {
        "plan": {"name": "t", "trials": trials},
        "serial_seconds": serial,
    }
    if vector is not None:
        payload["vector_seconds"] = vector
    if figures is not None:
        payload["figures"] = figures
    return payload


def figure(seconds, trials=100):
    return {"trials": trials, "vector_seconds": seconds}


class TestCoreMetrics:
    def test_equal_artifacts_pass(self):
        report = compare_benchmarks(artifact(), artifact())
        assert report["ok"]

    def test_serial_regression_fails(self):
        report = compare_benchmarks(artifact(serial=10.0), artifact(serial=20.0))
        assert not report["ok"]
        assert report["regressed"] == ["serial"]

    def test_missing_vector_leg_skips(self):
        report = compare_benchmarks(
            artifact(vector=None), artifact(vector=1.0)
        )
        rows = {row["metric"]: row for row in report["metrics"]}
        assert rows["vector"]["status"] == "skipped"
        assert report["ok"]

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            compare_benchmarks(artifact(), artifact(), threshold=1.5)


class TestFigureMetrics:
    def test_matching_figures_compared_ok(self):
        base = artifact(figures={"fig1": figure(0.5)})
        cand = artifact(figures={"fig1": figure(0.55)})
        report = compare_benchmarks(base, cand)
        rows = {row["metric"]: row for row in report["metrics"]}
        assert rows["figure:fig1"]["status"] == "ok"
        assert report["ok"]

    def test_figure_vector_regression_fails(self):
        base = artifact(figures={"fig1": figure(0.5)})
        cand = artifact(figures={"fig1": figure(2.0)})
        report = compare_benchmarks(base, cand)
        assert not report["ok"]
        assert report["regressed"] == ["figure:fig1"]
        assert "figure:fig1" in format_bench_report(report)

    def test_figure_missing_from_baseline_skips(self):
        # Older committed baselines predate the --figures leg: a new
        # figure must not break the gate until a baseline records it.
        base = artifact()
        cand = artifact(figures={"brand_new": figure(0.1)})
        report = compare_benchmarks(base, cand)
        rows = {row["metric"]: row for row in report["metrics"]}
        assert rows["figure:brand_new"]["status"] == "skipped"
        assert report["ok"]

    def test_malformed_figure_entry_skips(self):
        base = artifact(figures={"fig1": figure(0.5)})
        cand = artifact(figures={"fig1": {"trials": 0, "vector_seconds": 0.5}})
        report = compare_benchmarks(base, cand)
        rows = {row["metric"]: row for row in report["metrics"]}
        assert rows["figure:fig1"]["status"] == "skipped"
        assert report["ok"]
