"""Tests that the regenerated tables/figures match the paper's."""

import pytest

from repro.analysis.tables import (
    binary_slot_labels,
    fig2_expansion_conditions,
    fig3_extraction_matrix,
    render_fig3,
    render_table1,
    render_table2,
    table1_prox5_conditions,
    table2_prox15_conditions,
)


class TestTable1:
    def test_deadlines_match_paper(self):
        table = table1_prox5_conditions(3)
        # Paper Table 1, column (v, 2): Σ_v at round 1, Ω at round 2.
        assert table[(0, 2)] == {"sigma_by": 1, "no_other_by": 3, "omega_by": 2}
        assert table[(1, 2)] == {"sigma_by": 1, "no_other_by": 3, "omega_by": 2}
        # Column (v, 1): Σ_v by round 2, no other Σ by round 2, Ω at round 3.
        assert table[(0, 1)] == {"sigma_by": 2, "no_other_by": 2, "omega_by": 3}

    def test_render_mentions_both_values(self):
        text = render_table1(3)
        assert "Σ0" in text and "Σ1" in text and "Ω0" in text


class TestTable2:
    def test_matches_paper_exactly(self):
        """Both value columns of the paper's Table 2 (r = 6)."""
        table = table2_prox15_conditions(6)
        paper_column = {
            7: {1: 1, 2: 2, 3: 3, 4: 4, 5: 5, 6: 6},
            6: {2: 1, 3: 2, 4: 3, 5: 4, 6: 5},
            5: {2: 1, 3: 2, 4: 3, 5: 4, 6: 4},
            4: {2: 1, 3: 2, 4: 3, 5: 3, 6: 4},
            3: {2: 1, 3: 2, 4: 3, 5: 3, 6: 3},
            2: {2: 1, 3: 2, 4: 2, 5: 3, 6: 3},
            1: {2: 1, 3: 2, 4: 2, 5: 2, 6: 3},
        }
        for value in (0, 1):
            for grade, expected in paper_column.items():
                assert table[(value, grade)] == expected

    def test_render_has_fifteen_slots(self):
        text = render_table2(6)
        assert "(0,7)" in text and "(1,7)" in text and "(⊥,0)" in text


class TestFig2:
    def test_prox5_to_prox9(self):
        rows = dict(fig2_expansion_conditions(5))
        assert rows[("z", 4)] == "|S(z,2)| >= n-t"
        assert "n-2t" in rows[("z", 3)]
        assert ("any", 0) in rows

    def test_prox4_to_prox7_has_seven_slots(self):
        rows = fig2_expansion_conditions(4)
        grades = [grade for (_v, grade), _c in rows]
        assert max(grades) == 3  # Prox_7: G = 3
        # grades 0..3 on the value side plus the default slot
        assert sorted(set(grades)) == [0, 1, 2, 3]


class TestFig3:
    def test_matrix_is_the_monotone_cut(self):
        matrix = fig3_extraction_matrix(10)
        assert len(matrix) == 10 and all(len(row) == 9 for row in matrix)
        # Row p: 1s exactly in columns c <= p.
        for position, row in enumerate(matrix):
            expected = [1 if coin <= position else 0 for coin in range(1, 10)]
            assert row == expected

    def test_render_contains_slot_labels(self):
        text = render_fig3(10)
        assert "(0,4)" in text and "(1,4)" in text and "c=9" in text


class TestSlotLabels:
    def test_odd_even(self):
        assert binary_slot_labels(5) == [(0, 2), (0, 1), (None, 0), (1, 1), (1, 2)]
        assert binary_slot_labels(4) == [(0, 1), (0, 0), (1, 0), (1, 1)]
