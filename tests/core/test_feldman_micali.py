"""Tests for the fixed-round Feldman–Micali baseline."""

import pytest

from repro.adversary.strategies import CrashAdversary, TwoFaceAdversary
from repro.core.feldman_micali import feldman_micali_program, rounds_feldman_micali

from ..conftest import run


def fm(kappa):
    return lambda c, b: feldman_micali_program(c, b, kappa)


class TestFeldmanMicali:
    @pytest.mark.parametrize("kappa", [1, 3, 6])
    def test_round_count_is_two_kappa(self, kappa):
        res = run(fm(kappa), [1, 0, 1, 0], max_faulty=1, session=f"fm{kappa}")
        assert res.metrics.rounds == rounds_feldman_micali(kappa) == 2 * kappa

    @pytest.mark.parametrize("bit", [0, 1])
    def test_validity(self, bit):
        res = run(fm(4), [bit] * 4, max_faulty=1, session="fmv")
        assert all(v == bit for v in res.outputs.values())

    @pytest.mark.parametrize("seed", range(8))
    def test_consistency_split_inputs(self, seed):
        res = run(fm(6), [0, 1, 0, 1], max_faulty=1, seed=seed, session=f"fmc{seed}")
        assert res.honest_agree()

    @pytest.mark.parametrize("seed", range(6))
    def test_consistency_under_two_face(self, seed):
        adversary = TwoFaceAdversary(victims=[3], factory=fm(6))
        res = run(
            fm(6), [0, 0, 1, 1], max_faulty=1,
            adversary=adversary, seed=seed, session=f"fmt{seed}",
        )
        assert res.honest_agree()

    def test_validity_under_crash(self):
        res = run(
            fm(4), [1, 1, 1, 1], max_faulty=1,
            adversary=CrashAdversary(victims=[2], crash_round=3), session="fmx",
        )
        assert all(v == 1 for v in res.honest_outputs.values())

    def test_resilience_guard(self):
        with pytest.raises(ValueError):
            run(fm(2), [0, 1, 1], max_faulty=1, session="fmg")

    def test_input_validation(self):
        with pytest.raises(ValueError):
            run(fm(2), [0, 1, "x", 1], max_faulty=1, session="fmi")

    def test_needs_double_the_rounds_of_ours(self):
        """The headline comparison, executed: same error target, FM takes
        ~2x the rounds of the paper's t<n/3 protocol."""
        from repro.core.ba import ba_one_third_program, rounds_one_third

        kappa = 6
        fm_res = run(fm(kappa), [1, 0, 1, 0], max_faulty=1, session="fmd")
        ours = run(
            lambda c, b: ba_one_third_program(c, b, kappa),
            [1, 0, 1, 0], max_faulty=1, session="fme",
        )
        assert fm_res.metrics.rounds == 2 * kappa
        assert ours.metrics.rounds == kappa + 1
        assert fm_res.metrics.rounds > ours.metrics.rounds
