"""Tests for the generalized iteration Π_iter (Theorem 1)."""

import random

import pytest

from repro.core.iteration import (
    ideal_coin_factory,
    pi_iter_program,
    threshold_coin_factory,
)
from repro.crypto.coin import IdealCoin
from repro.proxcensus.linear_half import prox_linear_half_program
from repro.proxcensus.one_third import prox_one_third_program

from ..conftest import run


def iter13(slots_rounds, coin_factory=None, overlap=False):
    coin_factory = coin_factory or threshold_coin_factory()

    def factory(ctx, bit):
        result = yield from pi_iter_program(
            ctx,
            bit,
            slots=2 ** slots_rounds + 1,
            prox_factory=lambda c, b: prox_one_third_program(
                c, b, rounds=slots_rounds
            ),
            prox_rounds=slots_rounds,
            coin_factory=coin_factory,
            overlap_coin=overlap,
        )
        return result

    return factory


class TestRoundAccounting:
    def test_sequential_coin_adds_one_round(self):
        res = run(iter13(3), [1, 0, 1, 0], max_faulty=1, session="it1")
        assert res.metrics.rounds == 4  # 3 prox + 1 coin

    def test_overlapped_coin_shares_last_round(self):
        res = run(iter13(3, overlap=True), [1, 0, 1, 0], max_faulty=1, session="it2")
        assert res.metrics.rounds == 3

    def test_overlap_with_single_round_prox(self):
        res = run(iter13(1, overlap=True), [1, 0, 1, 0], max_faulty=1, session="it3")
        assert res.metrics.rounds == 1


class TestSemantics:
    @pytest.mark.parametrize("bit", [0, 1])
    def test_validity(self, bit):
        res = run(iter13(3), [bit] * 4, max_faulty=1, session="it4")
        assert all(v == bit for v in res.outputs.values())

    def test_agreement_with_split_inputs_no_adversary(self):
        for seed in range(10):
            res = run(
                iter13(3), [0, 1, 1, 0], max_faulty=1,
                seed=seed, session=f"it5-{seed}",
            )
            assert res.honest_agree()

    def test_ideal_coin_flavour(self):
        coin = IdealCoin(random.Random(4))
        res = run(
            iter13(3, coin_factory=ideal_coin_factory(coin)),
            [1, 0, 1, 0],
            max_faulty=1,
            session="it6",
        )
        assert res.honest_agree()
        assert res.metrics.rounds == 4

    def test_linear_half_prox_with_overlap(self):
        def factory(ctx, bit):
            result = yield from pi_iter_program(
                ctx,
                bit,
                slots=5,
                prox_factory=lambda c, b: prox_linear_half_program(c, b, rounds=3),
                prox_rounds=3,
                coin_factory=threshold_coin_factory(),
                overlap_coin=True,
            )
            return result

        res = run(factory, [1, 0, 1, 0, 1], max_faulty=2, session="it7")
        assert res.metrics.rounds == 3
        assert res.honest_agree()

    def test_outputs_are_bits(self):
        for seed in range(5):
            res = run(
                iter13(2), [0, 1, 0, 1], max_faulty=1,
                seed=seed, session=f"it8-{seed}",
            )
            assert set(res.outputs.values()) <= {0, 1}
