"""BA over the VRF coin — works honestly, documented-weak under rushing."""

import pytest

from repro.core.ba import ba_one_third_program
from repro.core.iteration import vrf_coin_factory

from ..conftest import run


class TestBAOverVrfCoin:
    def test_validity_and_agreement_passively(self):
        factory = lambda c, b: ba_one_third_program(
            c, b, kappa=6, coin_factory=vrf_coin_factory()
        )
        res = run(factory, [1, 1, 1, 1], 1, session="vba1")
        assert all(v == 1 for v in res.outputs.values())
        for seed in range(5):
            res = run(factory, [0, 1, 0, 1], 1, seed=seed, session=f"vba2-{seed}")
            assert res.honest_agree()

    def test_round_count_unchanged(self):
        """The VRF coin is also 1-round, so kappa+1 still holds."""
        factory = lambda c, b: ba_one_third_program(
            c, b, kappa=5, coin_factory=vrf_coin_factory()
        )
        res = run(factory, [1, 0, 1, 0], 1, session="vba3")
        assert res.metrics.rounds == 6
