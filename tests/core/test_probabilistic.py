"""Tests for the Las-Vegas FM protocol and termination (non-)simultaneity."""

import pytest

from repro.adversary.strategies import CrashAdversary, TwoFaceAdversary
from repro.adversary.termination import GradeSplitAdversary
from repro.core.probabilistic import ProbTermOutput, fm_probabilistic_program

from ..conftest import run


def program(ctx, bit):
    return fm_probabilistic_program(ctx, bit)


class TestCorrectness:
    @pytest.mark.parametrize("bit", [0, 1])
    def test_validity_decides_first_iteration(self, bit):
        res = run(program, [bit] * 4, 1, session="pv")
        for output in res.outputs.values():
            assert output.value == bit
            assert output.decided_iteration == 1
        # one helper iteration after deciding: 2 iterations x 3 rounds
        assert all(r == 6 for r in res.finish_rounds.values())

    @pytest.mark.parametrize("seed", range(6))
    def test_agreement_split_inputs(self, seed):
        res = run(program, [0, 1, 0, 1], 1, seed=seed, session=f"pa{seed}")
        assert res.honest_agree()
        assert all(isinstance(o, ProbTermOutput) for o in res.outputs.values())

    @pytest.mark.parametrize("seed", range(4))
    def test_agreement_under_two_face(self, seed):
        adversary = TwoFaceAdversary(victims=[3], factory=program)
        res = run(
            program, [0, 0, 1, 1], 1,
            adversary=adversary, seed=seed, session=f"pt{seed}",
        )
        assert res.honest_agree()

    def test_agreement_under_crash(self):
        res = run(
            program, [1, 1, 1, 1], 1,
            adversary=CrashAdversary(victims=[3], crash_round=2), session="pc",
        )
        assert all(o.value == 1 for o in res.honest_outputs.values())

    def test_expected_constant_iterations(self):
        """Over many seeds, the mean decision iteration stays small."""
        iterations = []
        for seed in range(20):
            res = run(program, [0, 1, 1, 0], 1, seed=seed, session=f"pe{seed}")
            iterations.extend(
                o.decided_iteration for o in res.honest_outputs.values()
            )
        assert max(iterations) <= 8
        assert sum(iterations) / len(iterations) <= 4

    def test_input_validation(self):
        with pytest.raises(ValueError):
            run(program, [0, 1, 2, 1], 1, session="px")
        with pytest.raises(ValueError):
            run(program, [0, 1, 1], 1, session="py")  # t !< n/3


class TestTerminationSpread:
    def test_fixed_round_protocols_terminate_simultaneously(self):
        from repro.core.ba import ba_one_third_program

        res = run(
            lambda c, b: ba_one_third_program(c, b, kappa=6),
            [0, 1, 0, 1], 1, session="ts",
        )
        assert len(set(res.finish_rounds.values())) == 1

    def test_grade_split_adversary_desynchronizes_termination(self):
        """The §1 motivation, executed: probabilistic termination is not
        simultaneous — one honest party decides a full iteration before
        the others, and they halt 3 rounds apart."""
        adversary = GradeSplitAdversary(victims=[3], target=0, boost_value=0)
        res = run(
            program, [0, 0, 1, 0], 1, adversary=adversary, session="tg"
        )
        honest = res.honest_outputs
        assert len({o.value for o in honest.values()}) == 1  # still agree
        decided = {pid: o.decided_iteration for pid, o in honest.items()}
        assert decided[0] == 1
        assert decided[1] == decided[2] == 2
        finish = {pid: res.finish_rounds[pid] for pid in honest}
        assert finish[1] - finish[0] == 3  # one full iteration apart
