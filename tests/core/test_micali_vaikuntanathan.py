"""Tests for the MV-style t < n/2 baseline (threshold and PKI modes)."""

import pytest

from repro.adversary.strategies import CrashAdversary, TwoFaceAdversary
from repro.core.micali_vaikuntanathan import (
    micali_vaikuntanathan_program,
    mv_pki_program,
    rounds_mv,
)

from ..conftest import run


def mv(kappa):
    return lambda c, b: micali_vaikuntanathan_program(c, b, kappa)


def mv_pki(kappa):
    return lambda c, b: mv_pki_program(c, b, kappa)


class TestMicaliVaikuntanathan:
    @pytest.mark.parametrize("kappa", [1, 3, 6])
    def test_round_count_is_two_kappa(self, kappa):
        res = run(mv(kappa), [1, 0, 1, 0, 1], max_faulty=2, session=f"mv{kappa}")
        assert res.metrics.rounds == rounds_mv(kappa) == 2 * kappa

    @pytest.mark.parametrize("bit", [0, 1])
    def test_validity(self, bit):
        res = run(mv(4), [bit] * 5, max_faulty=2, session="mvv")
        assert all(v == bit for v in res.outputs.values())

    @pytest.mark.parametrize("seed", range(8))
    def test_consistency_split_inputs(self, seed):
        res = run(
            mv(6), [0, 1, 0, 1, 1], max_faulty=2, seed=seed, session=f"mvc{seed}"
        )
        assert res.honest_agree()

    @pytest.mark.parametrize("seed", range(6))
    def test_consistency_under_two_face(self, seed):
        adversary = TwoFaceAdversary(victims=[3, 4], factory=mv(6))
        res = run(
            mv(6), [0, 0, 1, 1, 1], max_faulty=2,
            adversary=adversary, seed=seed, session=f"mvt{seed}",
        )
        assert res.honest_agree()

    def test_crash_tolerated(self):
        res = run(
            mv(4), [1, 1, 1, 1, 1], max_faulty=2,
            adversary=CrashAdversary(victims=[3, 4], crash_round=1), session="mvx",
        )
        assert all(v == 1 for v in res.honest_outputs.values())

    def test_resilience_guard(self):
        with pytest.raises(ValueError):
            run(mv(2), [0, 1], max_faulty=1, session="mvg")


class TestPkiMode:
    @pytest.mark.parametrize("kappa", [1, 3])
    def test_round_count(self, kappa):
        res = run(mv_pki(kappa), [1, 0, 1, 0, 1], max_faulty=2, session=f"mp{kappa}")
        assert res.metrics.rounds == 2 * kappa

    @pytest.mark.parametrize("bit", [0, 1])
    def test_validity(self, bit):
        res = run(mv_pki(3), [bit] * 5, max_faulty=2, session="mpv")
        assert all(v == bit for v in res.outputs.values())

    @pytest.mark.parametrize("seed", range(6))
    def test_consistency_under_two_face(self, seed):
        adversary = TwoFaceAdversary(victims=[3, 4], factory=mv_pki(4))
        res = run(
            mv_pki(4), [0, 0, 1, 1, 1], max_faulty=2,
            adversary=adversary, seed=seed, session=f"mpt{seed}",
        )
        assert res.honest_agree()

    def test_pki_mode_costs_a_factor_n_in_signatures(self):
        """§3.5: plain-signature certificates carry n-t signatures where a
        threshold signature carries one, so the PKI/threshold signature
        ratio must grow with n (the asymptotic factor-n gap)."""
        ratios = []
        for n in (5, 9):
            t = (n - 1) // 2
            inputs = [i % 2 for i in range(n)]
            threshold = run(mv(3), inputs, max_faulty=t, session=f"mps{n}")
            pki = run(mv_pki(3), inputs, max_faulty=t, session=f"mpp{n}")
            assert pki.metrics.honest_signatures > threshold.metrics.honest_signatures
            ratios.append(
                pki.metrics.honest_signatures / threshold.metrics.honest_signatures
            )
        assert ratios[1] > ratios[0]
