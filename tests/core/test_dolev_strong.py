"""Tests for the Dolev–Strong deterministic baseline."""

import pytest

from repro.adversary.strategies import (
    CrashAdversary,
    MalformedAdversary,
    TwoFaceAdversary,
)
from repro.core.dolev_strong import (
    dolev_strong_ba_program,
    dolev_strong_broadcast_program,
)

from ..conftest import run


def bcast(dealer=0, default="∅"):
    return lambda c, v: dolev_strong_broadcast_program(c, v, dealer, default)


class TestBroadcast:
    @pytest.mark.parametrize("t", [1, 2, 3])
    def test_honest_dealer_validity_and_round_count(self, t):
        n = t + 2
        res = run(bcast(), ["blk"] + ["?"] * (n - 1), max_faulty=t)
        assert all(v == "blk" for v in res.outputs.values())
        assert res.metrics.rounds == t + 1

    @pytest.mark.parametrize("seed", range(5))
    def test_equivocating_dealer_consistency(self, seed):
        adversary = TwoFaceAdversary(
            victims=[0], factory=bcast(), low_input="a", high_input="b"
        )
        res = run(
            bcast(), ["a", "?", "?", "?"], max_faulty=1,
            adversary=adversary, seed=seed,
        )
        values = set(res.honest_outputs.values())
        assert len(values) == 1  # consistency even against equivocation

    def test_silent_dealer_yields_default(self):
        res = run(
            bcast(), ["x", "?", "?", "?"], max_faulty=1,
            adversary=CrashAdversary(victims=[0], crash_round=1),
        )
        assert all(v == "∅" for v in res.honest_outputs.values())

    def test_byzantine_relayer_cannot_break_consistency(self):
        res = run(
            bcast(), ["blk", "?", "?", "?"], max_faulty=1,
            adversary=MalformedAdversary(victims=[2]),
        )
        assert all(v == "blk" for v in res.honest_outputs.values())

    def test_invalid_dealer_rejected(self):
        with pytest.raises(ValueError):
            run(bcast(dealer=9), ["x"] * 4, max_faulty=1)


class TestBA:
    def test_majority_inputs_win(self):
        res = run(
            lambda c, v: dolev_strong_ba_program(c, v),
            ["a", "a", "a", "b"], max_faulty=1,
        )
        assert all(v == "a" for v in res.outputs.values())
        assert res.metrics.rounds == 2  # t + 1

    def test_unanimous_validity_under_crash(self):
        res = run(
            lambda c, v: dolev_strong_ba_program(c, v),
            ["a", "a", "a", "a"], max_faulty=1,
            adversary=CrashAdversary(victims=[3], crash_round=1),
        )
        assert all(v == "a" for v in res.honest_outputs.values())

    def test_consistency_split_inputs(self):
        res = run(
            lambda c, v: dolev_strong_ba_program(c, v, default="D"),
            ["a", "b", "a", "b"], max_faulty=1,
        )
        assert res.honest_agree()
