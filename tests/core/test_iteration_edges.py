"""Edge-path tests for Π_iter: coin failure, non-binary clamps, overlap."""

import pytest

from repro.core.iteration import pi_iter_program, threshold_coin_factory
from repro.proxcensus.base import ProxOutput
from repro.proxcensus.one_third import prox_one_third_program

from ..conftest import run


def failing_coin_factory():
    """A coin whose combine never succeeds (models total share loss)."""

    def factory(ctx, index, low, high):
        yield ctx.broadcast(None)  # the round is still spent
        return None

    return factory


def synthetic_prox(output):
    """A 1-round 'Proxcensus' that returns a fixed output (test double)."""

    def factory(ctx, _bit):
        yield ctx.broadcast(None)
        return output

    return factory


class TestCoinFailure:
    def test_failed_coin_degrades_to_low_value(self):
        """With coin=None every party falls back to coin=1 — identical at
        all parties, so agreement still holds; validity is untouched."""

        def program(ctx, bit):
            result = yield from pi_iter_program(
                ctx, bit, slots=9,
                prox_factory=lambda c, b: prox_one_third_program(c, b, rounds=3),
                prox_rounds=3,
                coin_factory=failing_coin_factory(),
            )
            return result

        res = run(program, [1, 1, 1, 1], 1, session="cf1")
        assert all(v == 1 for v in res.outputs.values())
        res = run(program, [0, 1, 0, 1], 1, session="cf2")
        assert res.honest_agree()

    def test_failed_coin_still_spends_one_round(self):
        def program(ctx, bit):
            result = yield from pi_iter_program(
                ctx, bit, slots=3,
                prox_factory=lambda c, b: prox_one_third_program(c, b, rounds=1),
                prox_rounds=1,
                coin_factory=failing_coin_factory(),
            )
            return result

        res = run(program, [1, 1, 1, 1], 1, session="cf3")
        assert res.metrics.rounds == 2


class TestNonBinaryClamp:
    def test_non_binary_prox_value_degrades_to_center(self):
        """A (impossible-for-honest) non-binary Proxcensus value is clamped
        to the (0, 0) slot rather than crashing extraction."""

        def program(ctx, bit):
            result = yield from pi_iter_program(
                ctx, bit, slots=5,
                prox_factory=synthetic_prox(ProxOutput("weird", 2)),
                prox_rounds=1,
                coin_factory=threshold_coin_factory(),
            )
            return result

        res = run(program, [1, 1, 1, 1], 1, session="nb1")
        assert set(res.outputs.values()) <= {0, 1}
        assert res.honest_agree()


class TestOverlapEdge:
    def test_overlap_with_zero_round_prox_falls_back_to_sequential(self):
        def instant_prox(ctx, _bit):
            return ProxOutput(1, 1)
            yield  # pragma: no cover

        def program(ctx, bit):
            result = yield from pi_iter_program(
                ctx, bit, slots=3,
                prox_factory=instant_prox,
                prox_rounds=0,
                coin_factory=threshold_coin_factory(),
                overlap_coin=True,
            )
            return result

        res = run(program, [1, 1, 1, 1], 1, session="ov0")
        assert res.metrics.rounds == 1  # just the coin round
        assert all(v == 1 for v in res.outputs.values())
