"""Test package."""
