"""Tests for the extraction function (paper §3.4, Fig. 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.extraction import (
    coin_range,
    extract,
    extract_by_position,
    splitting_coin,
)
from repro.proxcensus.base import max_grade, slot_index, slot_label


@st.composite
def slot_and_coin(draw):
    slots = draw(st.integers(min_value=2, max_value=64))
    value = draw(st.integers(0, 1))
    grade = draw(st.integers(min_value=0, max_value=max_grade(slots)))
    coin = draw(st.integers(min_value=1, max_value=slots - 1))
    return slots, value, grade, coin


class TestClosedForm:
    @given(args=slot_and_coin())
    @settings(max_examples=200, deadline=None)
    def test_formula_equals_geometric_form(self, args):
        """The paper's f(b,g,c) is the cut 'output 1 iff slot >= c'."""
        slots, value, grade, coin = args
        assert extract(value, grade, coin, slots) == extract_by_position(
            value, grade, coin, slots
        )

    @given(
        slots=st.integers(min_value=2, max_value=64),
        coin=st.integers(min_value=1, max_value=63),
    )
    @settings(max_examples=100, deadline=None)
    def test_validity_slots_are_fixed_points(self, slots, coin):
        """Pre-agreement lands on an extremal slot; no coin changes it."""
        if coin > slots - 1:
            return
        grades = max_grade(slots)
        assert extract(1, grades, coin, slots) == 1
        assert extract(0, grades, coin, slots) == 0

    @given(slots=st.integers(min_value=2, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_slot_position(self, slots):
        """For a fixed coin, the cut is a monotone step function."""
        for coin in range(1, slots):
            outputs = []
            for position in range(slots):
                value, grade = slot_label(position, slots)
                if value is None:
                    value, grade = 0, 0
                outputs.append(extract(value, grade, coin, slots))
            assert outputs == sorted(outputs)  # 0...0 1...1

    @given(slots=st.integers(min_value=2, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_exactly_one_coin_splits_each_adjacent_pair(self, slots):
        """Theorem 1's heart: adjacent slots disagree for exactly 1 coin."""
        for left in range(slots - 1):
            lv, lg = slot_label(left, slots)
            rv, rg = slot_label(left + 1, slots)
            lv, lg = (0, 0) if lv is None else (lv, lg)
            rv, rg = (0, 0) if rv is None else (rv, rg)
            splitting = [
                coin
                for coin in range(1, slots)
                if extract(lv, lg, coin, slots) != extract(rv, rg, coin, slots)
            ]
            assert splitting == [splitting_coin(left, slots)]


class TestValidation:
    def test_coin_range(self):
        assert coin_range(5) == (1, 4)
        with pytest.raises(ValueError):
            coin_range(1)

    def test_extract_rejects_non_bits(self):
        with pytest.raises(ValueError):
            extract(2, 0, 1, 5)

    def test_extract_rejects_bad_grade(self):
        with pytest.raises(ValueError):
            extract(1, 3, 1, 5)

    def test_extract_rejects_bad_coin(self):
        with pytest.raises(ValueError):
            extract(1, 0, 0, 5)
        with pytest.raises(ValueError):
            extract(1, 0, 5, 5)

    def test_splitting_coin_bounds(self):
        with pytest.raises(ValueError):
            splitting_coin(-1, 5)
        with pytest.raises(ValueError):
            splitting_coin(4, 5)

    def test_fm_special_case(self):
        """At s = 3 extraction is classic FM: keep on grade 1, coin on 0."""
        # grade 1 keeps the value whatever the coin
        for coin in (1, 2):
            assert extract(1, 1, coin, 3) == 1
            assert extract(0, 1, coin, 3) == 0
        # grade 0 adopts the coin (c=1 -> 1, c=2 -> 0)
        for value in (0, 1):
            assert extract(value, 0, 1, 3) == 1
            assert extract(value, 0, 2, 3) == 0

    def test_paper_fig3_shape_for_prox10(self):
        """Fig. 3: Prox_10, coin in [1,9]; spot-check the printed cut."""
        assert extract(0, 4, 1, 10) == 0          # leftmost never 1
        assert extract(1, 4, 9, 10) == 1          # rightmost always 1
        assert extract(0, 0, 4, 10) == 1          # (0,0) is position 4
        assert extract(0, 0, 5, 10) == 0
        assert extract(1, 0, 5, 10) == 1          # boundary between centers
