"""Tests for the ablation protocol variants."""

import math

import pytest

from repro.adversary.strategies import TwoFaceAdversary
from repro.core.ablation import (
    ba_one_half_generalized,
    ba_one_third_chunked,
    bits_per_round_one_half,
    bits_per_round_one_third,
    rounds_one_half_generalized,
    rounds_one_third_chunked,
)

from ..conftest import run


class TestChunkedOneThird:
    @pytest.mark.parametrize("chunk,expected", [(1, 16), (2, 12), (4, 10), (8, 9)])
    def test_round_formula(self, chunk, expected):
        assert rounds_one_third_chunked(8, chunk) == expected

    def test_endpoints_are_fm_and_ours(self):
        from repro.core.ba import rounds_one_third
        from repro.core.feldman_micali import rounds_feldman_micali

        for kappa in (4, 8, 16):
            assert rounds_one_third_chunked(kappa, 1) == rounds_feldman_micali(kappa)
            assert rounds_one_third_chunked(kappa, kappa) == rounds_one_third(kappa)

    @pytest.mark.parametrize("chunk", [1, 2, 4, 8])
    def test_executes_with_formula_rounds(self, chunk):
        res = run(
            lambda c, b: ba_one_third_chunked(c, b, 8, chunk),
            [1, 0, 1, 0], 1, session=f"ch{chunk}",
        )
        assert res.honest_agree()
        assert res.metrics.rounds == rounds_one_third_chunked(8, chunk)

    def test_validity(self):
        res = run(
            lambda c, b: ba_one_third_chunked(c, b, 6, 3),
            [1, 1, 1, 1], 1, session="chv",
        )
        assert all(v == 1 for v in res.outputs.values())

    def test_consistency_under_two_face(self):
        factory = lambda c, b: ba_one_third_chunked(c, b, 6, 3)
        res = run(
            factory, [0, 0, 1, 1], 1,
            adversary=TwoFaceAdversary(victims=[3], factory=factory),
            session="cht",
        )
        assert res.honest_agree()

    def test_bits_per_round_increases_with_chunk(self):
        rates = [bits_per_round_one_third(m) for m in range(1, 10)]
        assert rates == sorted(rates)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            run(lambda c, b: ba_one_third_chunked(c, b, 4, 0), [0] * 4, 1)
        with pytest.raises(ValueError):
            run(lambda c, b: ba_one_third_chunked(c, b, 4, 5), [0] * 4, 1)


class TestGeneralizedOneHalf:
    def test_r3_linear_is_the_paper_protocol(self):
        from repro.core.ba import rounds_one_half

        for kappa in (2, 4, 8, 12):
            assert rounds_one_half_generalized(kappa, 3, "linear") == rounds_one_half(
                kappa
            )

    @pytest.mark.parametrize(
        "prox_rounds,family", [(2, "linear"), (3, "linear"), (4, "linear"), (4, "quadratic")]
    )
    def test_executes_with_formula_rounds(self, prox_rounds, family):
        res = run(
            lambda c, b: ba_one_half_generalized(c, b, 6, prox_rounds, family),
            [1, 0, 1, 0, 1], 2, session=f"g{family}{prox_rounds}",
        )
        assert res.honest_agree()
        assert res.metrics.rounds == rounds_one_half_generalized(
            6, prox_rounds, family
        )

    def test_r3_maximizes_bits_per_round(self):
        best = bits_per_round_one_half(3, "linear")
        for prox_rounds in (2, 4, 5, 6, 8):
            assert bits_per_round_one_half(prox_rounds, "linear") < best
        for prox_rounds in (4, 5, 6, 8):
            assert bits_per_round_one_half(prox_rounds, "quadratic") < best

    def test_quadratic_family_validity(self):
        res = run(
            lambda c, b: ba_one_half_generalized(c, b, 4, 5, "quadratic"),
            [0, 0, 0, 0, 0], 2, session="gq",
        )
        assert all(v == 0 for v in res.outputs.values())

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            run(
                lambda c, b: ba_one_half_generalized(c, b, 4, 3, "cubic"),
                [0] * 5, 2, session="gx",
            )
