"""Tests for the paper's headline BA protocols (Corollary 2)."""

import random

import pytest

from repro.adversary.strategies import (
    CrashAdversary,
    LastRoundCorruptionAdversary,
    MalformedAdversary,
    TwoFaceAdversary,
)
from repro.core.ba import (
    ba_one_half_program,
    ba_one_third_program,
    rounds_one_half,
    rounds_one_third,
)
from repro.core.iteration import ideal_coin_factory
from repro.crypto.coin import IdealCoin
from repro.crypto.keys import CryptoSuite

from ..conftest import run


def ba13(kappa, coin_factory=None):
    return lambda c, b: ba_one_third_program(c, b, kappa, coin_factory)


def ba12(kappa, coin_factory=None):
    return lambda c, b: ba_one_half_program(c, b, kappa, coin_factory)


class TestRoundFormulas:
    @pytest.mark.parametrize("kappa,expected", [(1, 2), (8, 9), (16, 17)])
    def test_one_third(self, kappa, expected):
        assert rounds_one_third(kappa) == expected

    @pytest.mark.parametrize("kappa,expected", [(1, 3), (2, 3), (8, 12), (9, 15)])
    def test_one_half(self, kappa, expected):
        assert rounds_one_half(kappa) == expected


class TestOneThird:
    @pytest.mark.parametrize("kappa", [1, 4, 8])
    def test_round_count_matches_formula(self, kappa):
        res = run(ba13(kappa), [1, 0, 1, 0], max_faulty=1, session=f"b{kappa}")
        assert res.metrics.rounds == rounds_one_third(kappa)

    @pytest.mark.parametrize("bit", [0, 1])
    def test_validity(self, bit):
        res = run(ba13(6), [bit] * 4, max_faulty=1, session="bv")
        assert all(v == bit for v in res.outputs.values())

    @pytest.mark.parametrize("seed", range(8))
    def test_consistency_split_inputs(self, seed):
        res = run(ba13(6), [0, 1, 0, 1], max_faulty=1, seed=seed, session=f"bc{seed}")
        assert res.honest_agree()
        assert set(res.outputs.values()) <= {0, 1}

    @pytest.mark.parametrize("seed", range(8))
    def test_consistency_under_two_face(self, seed):
        adversary = TwoFaceAdversary(victims=[3], factory=ba13(6))
        res = run(
            ba13(6), [0, 0, 1, 1], max_faulty=1,
            adversary=adversary, seed=seed, session=f"bt{seed}",
        )
        assert res.honest_agree()

    def test_validity_under_crash(self):
        res = run(
            ba13(6), [1, 1, 1, 1], max_faulty=1,
            adversary=CrashAdversary(victims=[3], crash_round=1), session="bcr",
        )
        assert all(v == 1 for v in res.honest_outputs.values())

    def test_validity_under_malformed(self):
        res = run(
            ba13(6), [0, 0, 0, 0], max_faulty=1,
            adversary=MalformedAdversary(victims=[3]), session="bm",
        )
        assert all(v == 0 for v in res.honest_outputs.values())

    def test_adaptive_corruption_mid_protocol(self):
        adversary = LastRoundCorruptionAdversary(victim=1, strike_round=4)
        res = run(ba13(6), [1, 1, 1, 1], max_faulty=1, adversary=adversary, session="ba")
        assert all(v == 1 for v in res.honest_outputs.values())

    def test_ideal_coin(self):
        coin = IdealCoin(random.Random(8))
        res = run(
            ba13(6, ideal_coin_factory(coin)), [1, 0, 0, 1],
            max_faulty=1, session="bi",
        )
        assert res.honest_agree()
        assert res.metrics.rounds == rounds_one_third(6)

    def test_larger_network(self):
        res = run(ba13(5), [i % 2 for i in range(10)], max_faulty=3, session="bl")
        assert res.honest_agree()

    def test_resilience_guard(self):
        with pytest.raises(ValueError):
            run(ba13(4), [0, 1, 0], max_faulty=1, session="bg")

    def test_input_validation(self):
        with pytest.raises(ValueError):
            run(ba13(4), [0, 1, 0, 2], max_faulty=1, session="bx")
        with pytest.raises(ValueError):
            run(lambda c, b: ba_one_third_program(c, b, kappa=0), [0] * 4,
                max_faulty=1, session="bk")


class TestOneHalf:
    @pytest.mark.parametrize("kappa", [2, 4, 8])
    def test_round_count_matches_formula(self, kappa):
        res = run(ba12(kappa), [1, 0, 1, 0, 1], max_faulty=2, session=f"h{kappa}")
        assert res.metrics.rounds == rounds_one_half(kappa)

    @pytest.mark.parametrize("bit", [0, 1])
    def test_validity(self, bit):
        res = run(ba12(6), [bit] * 5, max_faulty=2, session="hv")
        assert all(v == bit for v in res.outputs.values())

    @pytest.mark.parametrize("seed", range(8))
    def test_consistency_split_inputs(self, seed):
        res = run(
            ba12(6), [0, 1, 0, 1, 1], max_faulty=2,
            seed=seed, session=f"hc{seed}",
        )
        assert res.honest_agree()

    @pytest.mark.parametrize("seed", range(8))
    def test_consistency_under_two_face(self, seed):
        adversary = TwoFaceAdversary(victims=[3, 4], factory=ba12(6))
        res = run(
            ba12(6), [0, 0, 1, 1, 1], max_faulty=2,
            adversary=adversary, seed=seed, session=f"ht{seed}",
        )
        assert res.honest_agree()

    def test_dishonest_minority_is_tolerated(self):
        """t = 2 of n = 5 — beyond any t < n/3 protocol's resilience."""
        adversary = CrashAdversary(victims=[3, 4], crash_round=1)
        res = run(ba12(6), [1, 1, 1, 0, 0], max_faulty=2, adversary=adversary, session="hd")
        assert all(v == 1 for v in res.honest_outputs.values())

    def test_validity_under_malformed(self):
        res = run(
            ba12(6), [1, 1, 1, 1, 1], max_faulty=2,
            adversary=MalformedAdversary(victims=[4]), session="hm",
        )
        assert all(v == 1 for v in res.honest_outputs.values())

    def test_resilience_guard(self):
        with pytest.raises(ValueError):
            run(ba12(4), [0, 1], max_faulty=1, session="hg")


@pytest.mark.slow
class TestRealCryptoBackend:
    def test_ba_one_half_over_threshold_rsa(self):
        crypto = CryptoSuite.real(5, 2, random.Random(77), bits=128)
        res = run(
            ba12(2), [1, 0, 1, 0, 1], max_faulty=2,
            session="real", crypto=crypto,
        )
        assert res.honest_agree()
        assert res.metrics.rounds == rounds_one_half(2)

    def test_ba_one_third_over_threshold_rsa(self):
        crypto = CryptoSuite.real(4, 1, random.Random(78), bits=128)
        res = run(
            ba13(3), [1, 0, 1, 1], max_faulty=1,
            session="real13", crypto=crypto,
        )
        assert res.honest_agree()
