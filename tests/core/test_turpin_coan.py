"""Tests for the multivalued BA lifts (classic Turpin–Coan and ours)."""

import pytest

from repro.adversary.strategies import (
    CrashAdversary,
    MalformedAdversary,
    TwoFaceAdversary,
)
from repro.core.ba import ba_one_half_program, ba_one_third_program
from repro.core.turpin_coan import (
    multivalued_ba_program,
    turpin_coan_classic_program,
)

from ..conftest import run

KAPPA = 5


def bba13(ctx, bit):
    return ba_one_third_program(ctx, bit, KAPPA)


def bba12(ctx, bit):
    return ba_one_half_program(ctx, bit, KAPPA)


def classic(default=None):
    return lambda c, v: turpin_coan_classic_program(c, v, bba13, default)


def lifted(regime, bba, default=None):
    return lambda c, v: multivalued_ba_program(c, v, bba, regime, default)


class TestClassic:
    def test_validity(self):
        res = run(classic(), ["tx"] * 4, max_faulty=1, session="tc1")
        assert all(v == "tx" for v in res.outputs.values())

    def test_adds_exactly_two_rounds(self):
        res = run(classic(), ["tx"] * 4, max_faulty=1, session="tc2")
        assert res.metrics.rounds == 2 + (KAPPA + 1)

    @pytest.mark.parametrize("seed", range(5))
    def test_consistency_split_inputs(self, seed):
        res = run(
            classic("D"), ["a", "b", "c", "a"], max_faulty=1,
            seed=seed, session=f"tc3-{seed}",
        )
        assert res.honest_agree()

    @pytest.mark.parametrize("seed", range(5))
    def test_consistency_under_two_face(self, seed):
        adversary = TwoFaceAdversary(
            victims=[3], factory=classic("D"), low_input="a", high_input="b"
        )
        res = run(
            classic("D"), ["a", "a", "b", "b"], max_faulty=1,
            adversary=adversary, seed=seed, session=f"tc4-{seed}",
        )
        assert res.honest_agree()

    def test_validity_under_crash(self):
        res = run(
            classic(), ["v"] * 4, max_faulty=1,
            adversary=CrashAdversary(victims=[2], crash_round=1), session="tc5",
        )
        assert all(v == "v" for v in res.honest_outputs.values())

    def test_resilience_guard(self):
        with pytest.raises(ValueError):
            run(classic(), ["a", "b", "c"], max_faulty=1, session="tc6")


class TestLiftOneThird:
    def test_validity(self):
        res = run(lifted("one_third", bba13), ["k"] * 4, max_faulty=1, session="l1")
        assert all(v == "k" for v in res.outputs.values())

    def test_adds_exactly_two_rounds(self):
        res = run(lifted("one_third", bba13), ["k"] * 4, max_faulty=1, session="l2")
        assert res.metrics.rounds == 2 + (KAPPA + 1)

    @pytest.mark.parametrize("seed", range(5))
    def test_consistency_under_two_face(self, seed):
        adversary = TwoFaceAdversary(
            victims=[3], factory=lifted("one_third", bba13, "D"),
            low_input="a", high_input="b",
        )
        res = run(
            lifted("one_third", bba13, "D"), ["a", "a", "b", "b"],
            max_faulty=1, adversary=adversary, seed=seed, session=f"l3-{seed}",
        )
        assert res.honest_agree()

    def test_disagreement_falls_to_default(self):
        res = run(
            lifted("one_third", bba13, default="DEFAULT"),
            ["a", "b", "c", "d"], max_faulty=1, session="l4",
        )
        assert res.honest_agree()


class TestLiftOneHalf:
    def test_validity(self):
        res = run(lifted("one_half", bba12), ["k"] * 5, max_faulty=2, session="l5")
        assert all(v == "k" for v in res.outputs.values())

    def test_adds_exactly_three_rounds(self):
        res = run(lifted("one_half", bba12), ["k"] * 5, max_faulty=2, session="l6")
        assert res.metrics.rounds == 3 + 3 * ((KAPPA + 1) // 2)

    @pytest.mark.parametrize("seed", range(5))
    def test_consistency_under_two_face(self, seed):
        adversary = TwoFaceAdversary(
            victims=[3, 4], factory=lifted("one_half", bba12, "D"),
            low_input="a", high_input="b",
        )
        res = run(
            lifted("one_half", bba12, "D"), ["a", "a", "b", "b", "a"],
            max_faulty=2, adversary=adversary, seed=seed, session=f"l7-{seed}",
        )
        assert res.honest_agree()

    def test_malformed_adversary(self):
        res = run(
            lifted("one_half", bba12, "D"), ["x", "x", "x", "y", "y"],
            max_faulty=2, adversary=MalformedAdversary(victims=[4]), session="l8",
        )
        assert res.honest_agree()

    def test_unknown_regime_rejected(self):
        with pytest.raises(ValueError):
            run(lifted("bogus", bba13), ["a"] * 4, max_faulty=1, session="l9")
