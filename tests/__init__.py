"""Test package."""
