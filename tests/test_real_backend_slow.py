"""Slow tests: the whole protocol family over real cryptography.

These exercise every protocol against the Shoup threshold-RSA / RSA-FDH
backend end to end (key generation dominates; run with ``-m slow``).
Protocol-level behaviour — rounds, agreement, grades — must be identical
to the idealized backend, which is the DESIGN.md substitution claim.
"""

import random

import pytest

from repro.adversary.strategies import CrashAdversary, TwoFaceAdversary
from repro.core.ba import ba_one_third_program
from repro.core.dolev_strong import dolev_strong_broadcast_program
from repro.core.feldman_micali import feldman_micali_program
from repro.crypto.keys import CryptoSuite
from repro.proxcensus.base import check_proxcensus_consistency
from repro.proxcensus.linear_half import prox_linear_half_program
from repro.proxcensus.proxcast import proxcast_program
from repro.proxcensus.quadratic_half import prox_quadratic_half_program

from .conftest import run

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def real_crypto_5_2():
    return CryptoSuite.real(5, 2, random.Random(1001), bits=128)


@pytest.fixture(scope="module")
def real_crypto_4_1():
    return CryptoSuite.real(4, 1, random.Random(1002), bits=128)


class TestProxcensusOverRealCrypto:
    def test_linear_half(self, real_crypto_5_2):
        res = run(
            lambda c, x: prox_linear_half_program(c, x, rounds=3),
            [1, 0, 1, 0, 1], 2, crypto=real_crypto_5_2, session="rl",
        )
        check_proxcensus_consistency(res.outputs.values(), 5)

    def test_quadratic_half(self, real_crypto_5_2):
        res = run(
            lambda c, x: prox_quadratic_half_program(c, x, rounds=4),
            [1] * 5, 2, crypto=real_crypto_5_2, session="rq",
        )
        assert all(tuple(o) == (1, 2) for o in res.outputs.values())

    def test_proxcast(self, real_crypto_5_2):
        res = run(
            lambda c, x: proxcast_program(c, x, slots=4, dealer=0),
            ["blk"] * 5, 2, crypto=real_crypto_5_2, session="rp",
        )
        assert all(o.value == "blk" and o.grade == 1 for o in res.outputs.values())

    def test_linear_half_under_equivocation(self, real_crypto_5_2):
        factory = lambda c, x: prox_linear_half_program(c, x, rounds=3)
        res = run(
            factory, [0, 0, 1, 1, 1], 2,
            adversary=TwoFaceAdversary([3, 4], factory=factory),
            crypto=real_crypto_5_2, session="rle",
        )
        check_proxcensus_consistency(res.honest_outputs.values(), 5)


class TestBAOverRealCrypto:
    def test_feldman_micali(self, real_crypto_4_1):
        res = run(
            lambda c, b: feldman_micali_program(c, b, kappa=2),
            [1, 0, 1, 0], 1, crypto=real_crypto_4_1, session="rf",
        )
        assert res.honest_agree()
        assert res.metrics.rounds == 4

    def test_ba_one_third_with_crash(self, real_crypto_4_1):
        res = run(
            lambda c, b: ba_one_third_program(c, b, kappa=3),
            [1, 1, 1, 1], 1,
            adversary=CrashAdversary([3], crash_round=2),
            crypto=real_crypto_4_1, session="rb",
        )
        assert all(v == 1 for v in res.honest_outputs.values())

    def test_dolev_strong(self, real_crypto_4_1):
        res = run(
            lambda c, v: dolev_strong_broadcast_program(c, v, dealer=0),
            ["blk", "?", "?", "?"], 1, crypto=real_crypto_4_1, session="rd",
        )
        assert all(v == "blk" for v in res.outputs.values())
