"""Protocol/adversary registries: resolution, errors, extensibility."""

import pytest

from repro.adversary.base import Adversary
from repro.engine import TrialSpec, run_trial
from repro.engine.registry import (
    adversary_names,
    build_adversary,
    build_protocol_factory,
    protocol_names,
    register_adversary,
    register_protocol,
)


class TestResolution:
    def test_stock_protocols_are_registered(self):
        names = protocol_names()
        for expected in (
            "ba_one_third",
            "ba_one_half",
            "dolev_strong",
            "feldman_micali",
            "micali_vaikuntanathan",
            "mv_pki",
            "prox_one_third",
            "prox_linear_half",
            "prox_quadratic_half",
        ):
            assert expected in names

    def test_stock_adversaries_are_registered(self):
        names = adversary_names()
        for expected in (
            "straddle13",
            "straddle12",
            "crash",
            "malformed",
            "two_face",
        ):
            assert expected in names

    def test_unknown_protocol_raises_keyerror_listing_names(self):
        with pytest.raises(KeyError, match="unknown protocol 'nope'"):
            build_protocol_factory("nope", {})

    def test_unknown_adversary_raises_keyerror_listing_names(self):
        factory = build_protocol_factory("ba_one_third", {"kappa": 1})
        with pytest.raises(KeyError, match="unknown adversary 'nope'"):
            build_adversary("nope", {}, factory)

    def test_none_adversary_resolves_to_none(self):
        factory = build_protocol_factory("ba_one_third", {"kappa": 1})
        assert build_adversary(None, {}, factory) is None

    def test_non_callable_builder_rejected(self):
        with pytest.raises(TypeError):
            register_protocol("bad", "not-callable")
        with pytest.raises(TypeError):
            register_adversary("bad", 42)


class TestExtensibility:
    def test_registered_protocol_runs_through_engine(self):
        def constant_program(ctx, value):
            return value
            yield  # pragma: no cover - makes this a generator program

        register_protocol(
            "test_constant", lambda: (lambda ctx, value: constant_program(ctx, value))
        )
        spec = TrialSpec(
            protocol="test_constant", inputs=(7, 7, 7), max_faulty=0, session="reg"
        )
        result = run_trial(spec)
        assert result.outputs == {0: 7, 1: 7, 2: 7}
        assert result.finish_rounds == {0: 0, 1: 0, 2: 0}

    def test_registered_adversary_receives_factory(self):
        captured = {}

        def builder(factory, victims):
            captured["factory"] = factory
            return Adversary()

        register_adversary("test_capture", builder)
        factory = build_protocol_factory("ba_one_third", {"kappa": 1})
        build_adversary("test_capture", {"victims": (0,)}, factory)
        assert captured["factory"] is factory
