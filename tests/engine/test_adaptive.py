"""AdaptiveRunner: determinism vs ParallelRunner, early stopping, budget.

The two pinned guarantees:

* with a fixed budget and early stopping disabled, the adaptive runner
  is **byte-identical** to ``ParallelRunner`` on the same plan, for any
  worker count;
* with early stopping enabled it reaches the same accept/reject verdict
  per config while spending measurably fewer trials.
"""

import pytest

from repro.engine import AdaptiveRunner, ParallelRunner, TrialPlan


def _sweep_plan(kappas=(1, 2), trials=60):
    return TrialPlan.concat(
        "adaptive-test",
        [
            TrialPlan.monte_carlo(
                name=f"one_third-k{kappa}",
                protocol="ba_one_third",
                inputs=(0, 0, 1, 1),
                max_faulty=1,
                trials=trials,
                params={"kappa": kappa},
                adversary="straddle13",
                adversary_params={"victims": (3,)},
                seed=kappa,
                collect_signatures=False,
            )
            for kappa in kappas
        ],
    )


def _bounds(kappas=(1, 2)):
    return {f"one_third-k{kappa}": 2.0 ** -kappa for kappa in kappas}


class TestValidation:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="worker"):
            AdaptiveRunner(workers=0)

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            AdaptiveRunner(batch_size=0)

    def test_rejects_missing_bound(self):
        plan = _sweep_plan()
        with pytest.raises(KeyError, match="one_third-k1"):
            AdaptiveRunner().run(plan, {"some-other-config": 0.5})

    def test_rejects_empty_plan(self):
        with pytest.raises(ValueError, match="no trials"):
            AdaptiveRunner().run(TrialPlan(name="empty"), 0.5)


class TestFixedBudgetDeterminism:
    def test_byte_identical_to_parallel_runner_serial(self):
        plan = _sweep_plan()
        fixed = ParallelRunner(workers=1).run(plan)
        adaptive = AdaptiveRunner(
            workers=1, early_stop=False, batch_size=7
        ).run(plan, _bounds())
        assert adaptive.spent == len(plan)
        assert adaptive.results == fixed.results  # byte-identical, no Nones

    def test_byte_identical_across_worker_counts(self):
        plan = _sweep_plan()
        fixed = ParallelRunner(workers=1).run(plan)
        for workers in (2, 3):
            adaptive = AdaptiveRunner(
                workers=workers, early_stop=False, batch_size=7
            ).run(plan, _bounds())
            assert adaptive.results == fixed.results

    def test_early_stopped_results_are_a_prefix_subset(self):
        # Whatever trials the adaptive runner does execute must be the
        # very same executions the fixed runner produces at those plan
        # indices — early stopping skips work, never changes it.
        plan = _sweep_plan()
        fixed = ParallelRunner(workers=1).run(plan)
        adaptive = AdaptiveRunner(workers=1, batch_size=10).run(plan, _bounds())
        ran = 0
        for index, result in enumerate(adaptive.results):
            if result is not None:
                assert result == fixed.results[index]
                ran += 1
        assert ran == adaptive.spent

    def test_adaptive_rerun_is_bit_identical(self):
        plan = _sweep_plan()
        runner = AdaptiveRunner(workers=1, batch_size=10)
        first = runner.run(plan, _bounds())
        second = runner.run(plan, _bounds())
        assert first.results == second.results
        assert first.spent == second.spent
        assert [o.status for o in first.configs.values()] == [
            o.status for o in second.configs.values()
        ]


class TestEarlyStopping:
    def test_clear_separation_stops_a_config_early(self):
        # k=1 vs an absurd bound 0.999: the measured rate (~0.5) is
        # proven below it almost immediately.
        plan = _sweep_plan(kappas=(1,), trials=60)
        adaptive = AdaptiveRunner(workers=1, batch_size=10).run(
            plan, {"one_third-k1": 0.999}
        )
        outcome = adaptive.configs["one_third-k1"]
        assert outcome.status == "below"
        assert outcome.stopped_early
        assert outcome.executed < len(plan)
        assert adaptive.spent == outcome.executed
        assert adaptive.saved > 0

    def test_violated_bound_is_rejected(self):
        # k=1 (rate ~0.5) against a bound of 0.01: proven above.
        plan = _sweep_plan(kappas=(1,), trials=60)
        adaptive = AdaptiveRunner(workers=1, batch_size=10).run(
            plan, {"one_third-k1": 0.01}
        )
        outcome = adaptive.configs["one_third-k1"]
        assert outcome.status == "above"
        assert not outcome.accepted
        assert adaptive.verdicts() == {"one_third-k1": False}

    def test_same_verdicts_as_fixed_budget_with_fewer_trials(self):
        plan = _sweep_plan(kappas=(1, 2), trials=200)
        fixed = ParallelRunner(workers=1).run(plan)
        runner = AdaptiveRunner(workers=1, batch_size=25)
        adaptive = runner.run(plan, _bounds())
        assert adaptive.spent < len(plan)
        for name, indices in plan.configs().items():
            fixed_estimate = runner.estimate_for(name, _bounds())
            fixed_estimate.update(
                sum(
                    1
                    for index in indices
                    if not fixed.results[index].honest_agree()
                ),
                len(indices),
            )
            assert adaptive.configs[name].accepted == fixed_estimate.accepted

    def test_freed_budget_reallocates_to_widest_interval(self):
        # Give the sweep less budget than the plan: after k=1 settles
        # (vs a generous bound), the remainder must flow to k=2 — the
        # one with the wider interval — rather than being split evenly.
        plan = _sweep_plan(kappas=(1, 2), trials=100)
        adaptive = AdaptiveRunner(workers=1, batch_size=10).run(
            plan, {"one_third-k1": 0.999, "one_third-k2": 0.25}, budget=100
        )
        k1, k2 = (
            adaptive.configs["one_third-k1"],
            adaptive.configs["one_third-k2"],
        )
        assert k1.stopped_early
        assert k2.executed > 50  # got more than an even split
        assert adaptive.spent <= 100

    def test_budget_caps_total_trials(self):
        plan = _sweep_plan(kappas=(4,), trials=100)  # stays undecided
        adaptive = AdaptiveRunner(workers=1, batch_size=10).run(
            plan, _bounds(kappas=(4,)), budget=30
        )
        assert adaptive.spent == 30
        assert adaptive.configs["one_third-k4"].executed == 30

    def test_disable_early_stop_runs_everything(self):
        plan = _sweep_plan(kappas=(1,), trials=50)
        adaptive = AdaptiveRunner(workers=1, early_stop=False).run(
            plan, {"one_third-k1": 0.999}
        )
        assert adaptive.spent == len(plan)
        assert not adaptive.configs["one_third-k1"].stopped_early
        assert all(result is not None for result in adaptive.results)


class TestResultSurface:
    def test_executed_results_preserve_plan_order(self):
        plan = _sweep_plan()
        adaptive = AdaptiveRunner(workers=1, batch_size=10).run(plan, _bounds())
        executed = adaptive.executed_results()
        assert len(executed) == adaptive.spent
        indexed = [
            result for result in adaptive.results if result is not None
        ]
        assert executed == indexed

    def test_scalar_bound_applies_to_every_config(self):
        plan = _sweep_plan(kappas=(1, 2), trials=40)
        adaptive = AdaptiveRunner(workers=1, batch_size=10).run(plan, 0.999)
        assert all(
            outcome.bound == 0.999 for outcome in adaptive.configs.values()
        )
