"""The engine's load-bearing guarantee: worker count never changes results.

Two regression suites:

* parallel (4 workers) == serial (1 worker), field for field, on a mixed
  plan covering both BA protocols and both straddle adversaries;
* the engine reproduces the legacy ``run_trials`` harness bit-for-bit for
  the same (setup seed, base seed) — outputs, corrupted sets, finish
  rounds and metrics — so historical experiment numbers survive the
  migration.
"""

import pytest

from repro.analysis.experiments import ExperimentSetup, run_trials
from repro.core.ba import ba_one_third_program
from repro.adversary.straddle import OneThirdStraddleAdversary
from repro.engine import ParallelRunner, TrialPlan


def _mixed_plan(trials=4):
    return TrialPlan.concat(
        "determinism",
        [
            TrialPlan.monte_carlo(
                name="one_third",
                protocol="ba_one_third",
                inputs=(0, 0, 1, 1),
                max_faulty=1,
                trials=trials,
                params={"kappa": 2},
                adversary="straddle13",
                adversary_params={"victims": (3,)},
                seed=11,
            ),
            TrialPlan.monte_carlo(
                name="one_half",
                protocol="ba_one_half",
                inputs=(0, 0, 1, 1, 1),
                max_faulty=2,
                trials=trials,
                params={"kappa": 2},
                adversary="straddle12",
                adversary_params={"victims": (3, 4)},
                seed=12,
            ),
        ],
    )


class TestWorkerCountInvariance:
    def test_parallel_results_identical_to_serial(self):
        plan = _mixed_plan()
        serial = ParallelRunner(workers=1).run(plan)
        parallel = ParallelRunner(workers=4, chunk_size=2).run(plan)
        assert len(serial) == len(parallel) == len(plan)
        # ExecutionResult is a plain dataclass: == compares outputs,
        # corrupted, metrics (incl. per-round tallies), inputs and
        # finish_rounds field-for-field.
        assert serial.results == parallel.results

    def test_rerun_is_bit_identical(self):
        plan = _mixed_plan(trials=2)
        runner = ParallelRunner(workers=1)
        assert runner.run(plan).results == runner.run(plan).results


class TestLegacyHarnessEquivalence:
    def test_engine_reproduces_run_trials_exactly(self):
        base_seed, trials = 23, 5
        plan = TrialPlan.monte_carlo(
            name="legacy-equiv",
            protocol="ba_one_third",
            inputs=(0, 0, 1, 1),
            max_faulty=1,
            trials=trials,
            params={"kappa": 3},
            adversary="straddle13",
            adversary_params={"victims": (3,)},
            seed=base_seed,
            setup_seed=0,
        )
        engine_results = ParallelRunner(workers=1).run(plan).results

        setup = ExperimentSetup(num_parties=4, max_faulty=1, seed=0)
        legacy_results = run_trials(
            setup,
            lambda ctx, bit: ba_one_third_program(ctx, bit, kappa=3),
            (0, 0, 1, 1),
            trials=trials,
            adversary_factory=lambda: OneThirdStraddleAdversary([3]),
            seed=base_seed,
        )
        assert engine_results == legacy_results
