"""ParallelRunner mechanics: chunking, streaming, aggregation, suite reuse."""

from dataclasses import replace

import pytest

from repro.core.ba import ba_one_third_program
from repro.engine import (
    ParallelRunner,
    PlanResult,
    TrialPlan,
    clear_suite_cache,
    default_workers,
    register_protocol,
)
from repro.engine.runner import _SUITE_CACHE, _SUITE_CACHE_MAX, _suite_for


def _plan(trials=6, seed=5, kappa=2, collect_signatures=True):
    return TrialPlan.monte_carlo(
        name="runner-test",
        protocol="ba_one_third",
        inputs=(0, 0, 1, 1),
        max_faulty=1,
        trials=trials,
        params={"kappa": kappa},
        adversary="straddle13",
        adversary_params={"victims": (3,)},
        seed=seed,
        collect_signatures=collect_signatures,
    )


class TestValidation:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="at least one worker"):
            ParallelRunner(workers=0)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            ParallelRunner(workers=2, chunk_size=0)

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestSerialRun:
    def test_runs_all_trials_in_plan_order(self):
        plan = _plan(trials=4)
        result = ParallelRunner(workers=1).run(plan)
        assert isinstance(result, PlanResult)
        assert len(result) == 4
        assert result.workers == 1
        assert result.wall_seconds > 0
        for execution in result:
            assert set(execution.inputs) == {0, 1, 2, 3}

    def test_disagreement_rate_and_mean_rounds(self):
        result = ParallelRunner(workers=1).run(_plan(trials=8))
        rate = result.disagreement_rate()
        assert 0.0 <= rate <= 1.0
        assert result.mean_rounds() >= 1

    def test_merged_metrics_sums_trials(self):
        result = ParallelRunner(workers=1).run(_plan(trials=3))
        merged = result.merged_metrics()
        assert merged.total_messages == sum(
            execution.metrics.total_messages for execution in result
        )
        assert merged.total_signatures == sum(
            execution.metrics.total_signatures for execution in result
        )
        # merge() accumulates rounds: total simulated rounds across trials.
        assert merged.rounds == sum(
            execution.metrics.rounds for execution in result
        )

    def test_empty_result_helpers_raise(self):
        empty = PlanResult(
            plan=TrialPlan(name="empty"), results=[], workers=1, wall_seconds=0.0
        )
        with pytest.raises(ValueError):
            empty.disagreement_rate()
        with pytest.raises(ValueError):
            empty.mean_rounds()


class TestParallelRun:
    def test_small_plans_run_inline(self):
        result = ParallelRunner(workers=4).run(_plan(trials=1))
        assert result.workers == 1  # pool skipped, nothing to parallelize

    def test_chunked_dispatch_covers_every_trial(self):
        plan = _plan(trials=7)
        result = ParallelRunner(workers=2, chunk_size=2).run(plan)
        assert len(result) == 7
        assert result.chunk_size == 2
        assert all(execution is not None for execution in result)

    def test_auto_chunk_size_targets_four_chunks_per_worker(self):
        runner = ParallelRunner(workers=2)
        assert runner._auto_chunk_size(80) == 10
        assert runner._auto_chunk_size(3) == 1  # never zero


class TestSuiteCache:
    def test_same_suite_key_reuses_dealt_keys(self):
        plan = _plan(trials=2)
        first, second = plan.trials
        assert first.suite_key == second.suite_key
        suite = _suite_for(first)
        assert _suite_for(second) is suite
        assert _SUITE_CACHE[first.suite_key] is suite

    def test_distinct_setup_seed_deals_fresh_keys(self):
        a = _plan(trials=1).trials[0]
        b = replace(a, setup_seed=a.setup_seed + 1)
        assert _suite_for(a) is not _suite_for(b)

    def test_cache_is_bounded_lru(self):
        # A long-lived worker sweeping many (n, t, setup_seed) combos
        # must not pin every dealt suite forever.
        clear_suite_cache()
        base = _plan(trials=1).trials[0]
        specs = [
            replace(base, setup_seed=seed)
            for seed in range(_SUITE_CACHE_MAX + 3)
        ]
        for spec in specs:
            _suite_for(spec)
        assert len(_SUITE_CACHE) == _SUITE_CACHE_MAX
        # Oldest entries evicted, newest retained.
        assert specs[0].suite_key not in _SUITE_CACHE
        assert specs[-1].suite_key in _SUITE_CACHE

    def test_lru_touch_on_hit_protects_hot_suites(self):
        clear_suite_cache()
        base = _plan(trials=1).trials[0]
        specs = [
            replace(base, setup_seed=seed)
            for seed in range(_SUITE_CACHE_MAX + 1)
        ]
        for spec in specs[:_SUITE_CACHE_MAX]:
            _suite_for(spec)
        _suite_for(specs[0])  # re-touch the oldest...
        _suite_for(specs[-1])  # ...so this eviction hits specs[1] instead
        assert specs[0].suite_key in _SUITE_CACHE
        assert specs[1].suite_key not in _SUITE_CACHE

    def test_eviction_does_not_change_results(self):
        # Dealing is deterministic in setup_seed, so an evicted suite
        # re-deals bit-identically — eviction is invisible to trials.
        clear_suite_cache()
        plan = _plan(trials=2)
        before = ParallelRunner(workers=1).run(plan).results
        for seed in range(1, _SUITE_CACHE_MAX + 2):
            _suite_for(replace(plan.trials[0], setup_seed=seed))
        assert plan.trials[0].suite_key not in _SUITE_CACHE  # evicted
        assert ParallelRunner(workers=1).run(plan).results == before

    def test_clear_suite_cache(self):
        _suite_for(_plan(trials=1).trials[0])
        assert _SUITE_CACHE
        clear_suite_cache()
        assert not _SUITE_CACHE


class TestStreamingAndFailures:
    def test_run_iter_serial_streams_in_plan_order(self):
        plan = _plan(trials=4)
        pairs = list(ParallelRunner(workers=1).run_iter(plan))
        assert [index for index, _result in pairs] == [0, 1, 2, 3]
        assert pairs == list(enumerate(ParallelRunner(workers=1).run(plan).results))

    def test_run_iter_parallel_covers_plan_reassembles_to_run(self):
        plan = _plan(trials=7)
        runner = ParallelRunner(workers=2, chunk_size=2)
        collected = {}
        for index, result in runner.run_iter(plan):
            collected[index] = result
        assert sorted(collected) == list(range(7))
        assert [collected[i] for i in range(7)] == runner.run(plan).results

    def test_worker_failure_propagates(self):
        # An unregistered protocol raises inside the worker; the runner
        # must surface it, not swallow it behind missing results.
        bad = replace(_plan(trials=1).trials[0], protocol="no_such_protocol")
        plan = TrialPlan(name="poisoned", trials=(bad,) * 4)
        with pytest.raises(KeyError, match="no_such_protocol"):
            ParallelRunner(workers=2, chunk_size=1).run(plan)

    def test_early_failure_cancels_outstanding_chunks(self, tmp_path):
        # The failing chunk is FIRST; every later chunk is slow and
        # drops a marker file when it runs.  With submission-order
        # result consumption the error surfaced only after every slow
        # chunk ran to completion; with as_completed + cancellation the
        # queued chunks never execute at all.
        register_protocol("test_slow_marker", _slow_marker_builder)
        good = replace(
            _plan(trials=1).trials[0],
            protocol="test_slow_marker",
            params={"marker_dir": str(tmp_path), "delay": 0.05},
        )
        bad = replace(good, protocol="no_such_protocol", params={})
        plan = TrialPlan(name="fail-fast", trials=(bad,) + (good,) * 40)
        with pytest.raises(KeyError, match="no_such_protocol"):
            ParallelRunner(workers=2, chunk_size=1).run(plan)
        # At most the chunks already in flight when the failure landed
        # ran; the other ~40 were cancelled on the spot.
        markers = list(tmp_path.iterdir())
        assert len(markers) < 20, f"{len(markers)} slow chunks ran after failure"


def _slow_marker_builder(marker_dir, delay):
    """Builder for a deliberately slow protocol that logs its execution.

    Runs in the worker process (registry inherited via fork); the marker
    file is the evidence a cancelled chunk would have left behind.
    """
    import os
    import time as _time
    import uuid

    _time.sleep(delay)
    with open(os.path.join(marker_dir, uuid.uuid4().hex), "w"):
        pass
    return lambda ctx, bit: ba_one_third_program(ctx, bit, 1)
