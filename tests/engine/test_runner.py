"""ParallelRunner mechanics: chunking, aggregation, suite reuse."""

import pytest

from repro.engine import ParallelRunner, PlanResult, TrialPlan, default_workers
from repro.engine.runner import _SUITE_CACHE, _suite_for


def _plan(trials=6, seed=5, kappa=2, collect_signatures=True):
    return TrialPlan.monte_carlo(
        name="runner-test",
        protocol="ba_one_third",
        inputs=(0, 0, 1, 1),
        max_faulty=1,
        trials=trials,
        params={"kappa": kappa},
        adversary="straddle13",
        adversary_params={"victims": (3,)},
        seed=seed,
        collect_signatures=collect_signatures,
    )


class TestValidation:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="at least one worker"):
            ParallelRunner(workers=0)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            ParallelRunner(workers=2, chunk_size=0)

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestSerialRun:
    def test_runs_all_trials_in_plan_order(self):
        plan = _plan(trials=4)
        result = ParallelRunner(workers=1).run(plan)
        assert isinstance(result, PlanResult)
        assert len(result) == 4
        assert result.workers == 1
        assert result.wall_seconds > 0
        for execution in result:
            assert set(execution.inputs) == {0, 1, 2, 3}

    def test_disagreement_rate_and_mean_rounds(self):
        result = ParallelRunner(workers=1).run(_plan(trials=8))
        rate = result.disagreement_rate()
        assert 0.0 <= rate <= 1.0
        assert result.mean_rounds() >= 1

    def test_merged_metrics_sums_trials(self):
        result = ParallelRunner(workers=1).run(_plan(trials=3))
        merged = result.merged_metrics()
        assert merged.total_messages == sum(
            execution.metrics.total_messages for execution in result
        )
        assert merged.total_signatures == sum(
            execution.metrics.total_signatures for execution in result
        )
        # merge() accumulates rounds: total simulated rounds across trials.
        assert merged.rounds == sum(
            execution.metrics.rounds for execution in result
        )

    def test_empty_result_helpers_raise(self):
        empty = PlanResult(
            plan=TrialPlan(name="empty"), results=[], workers=1, wall_seconds=0.0
        )
        with pytest.raises(ValueError):
            empty.disagreement_rate()
        with pytest.raises(ValueError):
            empty.mean_rounds()


class TestParallelRun:
    def test_small_plans_run_inline(self):
        result = ParallelRunner(workers=4).run(_plan(trials=1))
        assert result.workers == 1  # pool skipped, nothing to parallelize

    def test_chunked_dispatch_covers_every_trial(self):
        plan = _plan(trials=7)
        result = ParallelRunner(workers=2, chunk_size=2).run(plan)
        assert len(result) == 7
        assert result.chunk_size == 2
        assert all(execution is not None for execution in result)

    def test_auto_chunk_size_targets_four_chunks_per_worker(self):
        runner = ParallelRunner(workers=2)
        assert runner._auto_chunk_size(80) == 10
        assert runner._auto_chunk_size(3) == 1  # never zero


class TestSuiteCache:
    def test_same_suite_key_reuses_dealt_keys(self):
        plan = _plan(trials=2)
        first, second = plan.trials
        assert first.suite_key == second.suite_key
        suite = _suite_for(first)
        assert _suite_for(second) is suite
        assert _SUITE_CACHE[first.suite_key] is suite

    def test_distinct_setup_seed_deals_fresh_keys(self):
        a = _plan(trials=1).trials[0]
        from dataclasses import replace

        b = replace(a, setup_seed=a.setup_seed + 1)
        assert _suite_for(a) is not _suite_for(b)
