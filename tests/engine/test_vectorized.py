"""Vector backend equivalence: lockstep batches vs the object simulator.

The contract under test is absolute: for every spec, a runner with
``backend="vector"`` returns results *bit-identical* to the reference
object simulator — same outputs, corrupted sets, inputs, finish rounds,
and ``RunMetrics`` down to per-round tally values **and insertion
order**.  Specs the vector models don't support must silently take the
object path inside the same run, so the guarantee holds for arbitrary
mixed plans.
"""

import random

import pytest

from repro.engine import (
    ParallelRunner,
    TrialPlan,
    TrialSpec,
    vector_model_pairs,
    vector_supports,
    vector_unsupported_reason,
)
from repro.engine.vectorized import execute_chunk
from tests.conftest import PROTOCOL_SHAPES


def canon(result):
    """Everything an ExecutionResult holds, as comparable plain data.

    ``per_round`` is canonicalized as an *ordered list*, not a dict —
    insertion order is part of the object simulator's observable output
    (``RunMetrics.as_tallies`` packs in that order) and the vector
    backend must reproduce it.
    """
    return (
        dict(result.outputs),
        set(result.corrupted),
        dict(result.inputs),
        dict(result.finish_rounds),
        result.metrics.rounds,
        [
            (
                index,
                stats.honest_messages,
                stats.corrupt_messages,
                stats.honest_signatures,
                stats.corrupt_signatures,
            )
            for index, stats in result.metrics.per_round.items()
        ],
    )


def assert_equivalent(plan):
    """Both backends, serially, trial for trial."""
    obj = ParallelRunner(workers=1, backend="object").run(plan).results
    vec = ParallelRunner(workers=1, backend="vector").run(plan).results
    assert len(obj) == len(vec) == len(plan)
    for index, (a, b) in enumerate(zip(obj, vec)):
        assert canon(a) == canon(b), f"trial {index} diverged"
    return obj


# Adversaries with a vector model, with valid params per protocol.
VECTOR_ADVERSARIES = {
    "ba_one_third": [
        (None, None),
        ("straddle13", {"victims": (3,)}),
        ("straddle13", {"victims": (3,), "down_group": (0,)}),
    ],
    "ba_one_half": [
        (None, None),
        ("straddle12", {"victims": (3, 4)}),
    ],
    "prox_one_third": [
        (None, None),
        ("straddle13", {"victims": (3,)}),
        ("two_face", {"victims": (3,)}),
    ],
    "prox_linear_half": [
        (None, None),
        ("two_face", {"victims": (3, 4)}),
        ("bare_straddle12", {"victims": (3, 4)}),
    ],
    "threshold_coin": [
        (None, None),
        ("withhold_coin", {"victims": (3,), "preferred": 1}),
    ],
    "vrf_coin": [
        (None, None),
        ("withhold_coin", {"victims": (3,), "preferred": 1}),
    ],
}

#: Every pair ISSUE 8 newly modeled — the registry must keep them all.
NEW_PAIRS = (
    ("fm_probabilistic", None),
    ("turpin_coan_classic", None),
    ("multivalued_ba", None),
    ("threshold_coin", None),
    ("threshold_coin", "withhold_coin"),
    ("vrf_coin", None),
    ("vrf_coin", "withhold_coin"),
    ("prox_one_third", "straddle13"),
    ("prox_one_third", "two_face"),
    ("prox_linear_half", "two_face"),
    ("prox_linear_half", "bare_straddle12"),
    ("dolev_strong", None),
    ("prox_expand_once", None),
    ("proxcast", None),
    ("certificate_gradecast", None),
)


class TestRegistry:
    def test_both_protocols_registered_with_and_without_adversary(self):
        pairs = set(vector_model_pairs())
        assert ("ba_one_third", None) in pairs
        assert ("ba_one_third", "straddle13") in pairs
        assert ("ba_one_half", None) in pairs
        assert ("ba_one_half", "straddle12") in pairs

    def test_every_newly_modeled_pair_is_registered(self):
        pairs = set(vector_model_pairs())
        missing = [pair for pair in NEW_PAIRS if pair not in pairs]
        assert not missing, missing

    def test_duplicate_registration_names_the_existing_model(self):
        from repro.engine import register_vector_model
        from repro.engine.registry import _VECTOR_MODELS

        existing = _VECTOR_MODELS[("ba_one_third", None)]
        # Same object again: idempotent (module re-imports must not blow up).
        register_vector_model("ba_one_third", None, existing)
        impostor = object()
        with pytest.raises(ValueError) as excinfo:
            register_vector_model("ba_one_third", None, impostor)
        message = str(excinfo.value)
        assert "ba_one_third" in message
        assert repr(existing) in message
        # The claim is unchanged after the failed overwrite.
        assert _VECTOR_MODELS[("ba_one_third", None)] is existing


class TestProtocolGrid:
    """Every registered protocol × the adversaries that apply to it.

    Vector-supported pairs exercise the lockstep models; everything else
    exercises the per-spec fallback — either way the runner's output
    must match the object path exactly.
    """

    @pytest.mark.parametrize("protocol", sorted(PROTOCOL_SHAPES))
    def test_no_adversary(self, protocol):
        inputs, max_faulty, params = PROTOCOL_SHAPES[protocol]
        plan = TrialPlan.monte_carlo(
            f"grid-{protocol}", protocol, inputs, max_faulty,
            trials=4, params=params, seed=17,
        )
        assert_equivalent(plan)

    @pytest.mark.parametrize(
        "protocol,adversary,adversary_params",
        [
            (proto, adv, advp)
            for proto, combos in VECTOR_ADVERSARIES.items()
            for adv, advp in combos
            if adv is not None
        ],
    )
    def test_vector_adversaries(self, protocol, adversary, adversary_params):
        inputs, max_faulty, params = PROTOCOL_SHAPES[protocol]
        plan = TrialPlan.monte_carlo(
            f"grid-{protocol}-{adversary}", protocol, inputs, max_faulty,
            trials=6, params=params, adversary=adversary,
            adversary_params=adversary_params, seed=23,
        )
        spec = plan.trials[0]
        assert vector_supports(spec), vector_unsupported_reason(spec)
        assert_equivalent(plan)


class TestRandomizedSweep:
    """Hypothesis-style randomized configurations, derandomized.

    A fixed-seed PRNG draws (protocol, κ, inputs, adversary, seeds) so
    the sweep covers a fresh corner of the space on every parameter draw
    while staying reproducible in CI.
    """

    @pytest.mark.parametrize("draw", range(8))
    def test_random_config_matches_object_path(self, draw):
        rng = random.Random(0xFEED + draw)
        protocol = rng.choice(["ba_one_third", "ba_one_half"])
        kappa = rng.randint(1, 5)
        if protocol == "ba_one_third":
            n = rng.choice([4, 7])
            t = (n - 1) // 3
        else:
            n = rng.choice([5, 9])
            t = (n - 1) // 2
        inputs = tuple(rng.randint(0, 1) for _ in range(n))
        adversary, adversary_params = rng.choice(
            VECTOR_ADVERSARIES[protocol][:2]
        )
        if adversary is not None:
            victims = tuple(range(n - t, n))
            adversary_params = {"victims": victims}
        plan = TrialPlan.monte_carlo(
            f"rand-{draw}", protocol, inputs, t,
            trials=9, params={"kappa": kappa},
            adversary=adversary, adversary_params=adversary_params,
            seed=rng.randint(0, 10_000), setup_seed=rng.randint(0, 100),
        )
        assert vector_supports(plan.trials[0])
        assert_equivalent(plan)

    @pytest.mark.parametrize("draw", range(10))
    def test_random_new_pair_matches_object_path(self, draw):
        """Randomized sweeps over the pairs ISSUE 8 newly modeled."""
        rng = random.Random(0xACE0 + draw)
        kind = draw % 5
        if kind == 0:
            protocol, params = "fm_probabilistic", None
            n, t = 4, 1
            inputs = tuple(rng.randint(0, 1) for _ in range(n))
            adversary, adversary_params = None, None
        elif kind == 1:
            protocol = rng.choice(["turpin_coan_classic", "multivalued_ba"])
            params = {"kappa": rng.randint(1, 3)}
            n, t = 4, 1
            inputs = tuple(rng.choice("abc") for _ in range(n))
            adversary, adversary_params = None, None
        elif kind == 2:
            protocol = rng.choice(["threshold_coin", "vrf_coin"])
            low = rng.randint(0, 3)
            high = low + rng.randint(0, 3)
            index = rng.randint(0, 5)
            params = {"index": index, "low": low, "high": high}
            n, t = 4, 1
            inputs = (None,) * n
            adversary = "withhold_coin"
            adversary_params = {
                "victims": (3,), "index": index, "low": low, "high": high,
                "preferred": rng.randint(low, high),
            }
        elif kind == 3:
            protocol = "prox_one_third"
            params = {"rounds": rng.randint(2, 4)}
            n, t = 4, 1
            inputs = tuple(rng.randint(0, 1) for _ in range(n))
            adversary = rng.choice(["straddle13", "two_face"])
            adversary_params = {"victims": (3,)}
        else:
            protocol = "prox_linear_half"
            params = {"rounds": rng.randint(2, 4)}
            n, t = 5, 2
            inputs = tuple(rng.randint(0, 1) for _ in range(n))
            adversary = rng.choice(["two_face", "bare_straddle12"])
            adversary_params = {"victims": (3, 4)}
        plan = TrialPlan.monte_carlo(
            f"randnew-{draw}", protocol, inputs, t,
            trials=6, params=params,
            adversary=adversary, adversary_params=adversary_params,
            seed=rng.randint(0, 10_000), setup_seed=rng.randint(0, 100),
        )
        spec = plan.trials[0]
        assert vector_supports(spec), vector_unsupported_reason(spec)
        assert_equivalent(plan)

    def test_collect_signatures_off_still_matches(self):
        plan = TrialPlan.monte_carlo(
            "nosig", "ba_one_half", (0, 0, 1, 1, 1), 2,
            trials=6, params={"kappa": 3}, adversary="straddle12",
            adversary_params={"victims": (3, 4)}, seed=5,
            collect_signatures=False,
        )
        assert vector_supports(plan.trials[0])
        assert_equivalent(plan)


class TestFallback:
    def test_vectorizable_false_opts_out_but_matches(self):
        plan = TrialPlan.monte_carlo(
            "optout", "ba_one_third", (0, 0, 1, 1), 1,
            trials=4, params={"kappa": 2}, seed=3, vectorizable=False,
        )
        spec = plan.trials[0]
        assert not vector_supports(spec)
        assert "vectorizable" in vector_unsupported_reason(spec)
        assert_equivalent(plan)

    def test_unsupported_adversary_falls_back(self):
        plan = TrialPlan.monte_carlo(
            "crash", "ba_one_third", (0, 0, 1, 1), 1,
            trials=4, params={"kappa": 2},
            adversary="crash", adversary_params={"victims": (3,)}, seed=3,
        )
        assert not vector_supports(plan.trials[0])
        assert_equivalent(plan)

    def test_unregistered_protocol_falls_back(self):
        plan = TrialPlan.monte_carlo(
            "fm", "feldman_micali", (0, 0, 1, 1), 1,
            trials=3, params={"kappa": 2}, seed=3,
        )
        assert not vector_supports(plan.trials[0])
        assert_equivalent(plan)

    def test_non_bit_inputs_fall_back(self):
        spec = TrialSpec(
            protocol="ba_one_third", inputs=(0, 2, 1, 1), max_faulty=1,
            params={"kappa": 2},
        )
        reason = vector_unsupported_reason(spec)
        assert reason is not None and "bit" in reason

    def test_mixed_chunk_groups_and_falls_back_per_spec(self):
        vec_plan = TrialPlan.monte_carlo(
            "mix-vec", "ba_one_third", (0, 0, 1, 1), 1,
            trials=3, params={"kappa": 2}, seed=1,
        )
        obj_plan = TrialPlan.monte_carlo(
            "mix-obj", "feldman_micali", (0, 0, 1, 1), 1,
            trials=2, params={"kappa": 2}, seed=1,
        )
        plan = TrialPlan.concat("mix", [vec_plan, obj_plan])
        chunk = list(enumerate(plan.trials))
        pairs, stats = execute_chunk(chunk, False, None)
        assert [index for index, _ in pairs] == list(range(len(plan)))
        assert stats["batched"] == 3
        assert stats["fallback"] == 2
        assert len(stats["batches"]) == 1
        # The fallback audit accounts for every demoted spec, by reason.
        assert sum(stats["fallback_reasons"].values()) == 2
        assert all(stats["fallback_reasons"])
        reference = ParallelRunner(workers=1).run(plan).results
        for (_, got), expected in zip(pairs, reference):
            assert canon(got) == canon(expected)


class TestProbeCache:
    """The cross-batch probe cache must be invisible except in speed."""

    def test_cache_on_off_bit_identity_and_stats(self):
        from repro.engine import clear_probe_cache, probe_cache_stats

        plan = TrialPlan.monte_carlo(
            "cache", "ba_one_third", (0, 0, 1, 1), 1,
            trials=6, params={"kappa": 2}, adversary="straddle13",
            adversary_params={"victims": (3,)}, seed=21,
        )
        clear_probe_cache()
        cold = ParallelRunner(workers=1, backend="vector").run(plan).results
        stats_cold = probe_cache_stats()
        assert stats_cold["misses"] >= 1
        assert stats_cold["size"] >= 1
        warm = ParallelRunner(workers=1, backend="vector").run(plan).results
        stats_warm = probe_cache_stats()
        assert stats_warm["hits"] > stats_cold["hits"]
        assert [canon(a) for a in cold] == [canon(b) for b in warm]
        obj = ParallelRunner(workers=1).run(plan).results
        assert [canon(a) for a in obj] == [canon(b) for b in warm]
        clear_probe_cache()
        assert probe_cache_stats()["size"] == 0

    def test_cache_hits_across_distinct_sessions(self):
        """Same frozen config under different seeds/sessions shares probes.

        ``batch_key`` strips seed/session/config, so a second Monte-Carlo
        sweep of the same configuration hits the cache even though every
        trial's session string differs — and stays bit-identical to the
        object path either way.
        """
        from repro.engine import clear_probe_cache, probe_cache_stats

        clear_probe_cache()
        first = TrialPlan.monte_carlo(
            "sessions-a", "prox_one_third", (0, 0, 1, 1), 1,
            trials=4, params={"rounds": 3}, adversary="straddle13",
            adversary_params={"victims": (3,)}, seed=100,
        )
        second = TrialPlan.monte_carlo(
            "sessions-b", "prox_one_third", (0, 0, 1, 1), 1,
            trials=4, params={"rounds": 3}, adversary="straddle13",
            adversary_params={"victims": (3,)}, seed=999,
        )
        assert_equivalent(first)
        before = probe_cache_stats()
        assert_equivalent(second)
        after = probe_cache_stats()
        assert after["hits"] > before["hits"]
        assert after["misses"] == before["misses"]

    def test_probe_cache_telemetry_span(self, tmp_path):
        import json

        from repro.engine import clear_probe_cache
        from repro.obs import TelemetryWriter, summarize_telemetry

        clear_probe_cache()
        path = str(tmp_path / "telemetry.jsonl")
        plan = TrialPlan.monte_carlo(
            "tele-cache", "ba_one_third", (0, 0, 1, 1), 1,
            trials=4, params={"kappa": 2}, seed=8,
        )
        with TelemetryWriter(path) as telemetry:
            runner = ParallelRunner(
                workers=1, backend="vector", telemetry=telemetry
            )
            runner.run(plan)
            runner.run(plan)
        summary = summarize_telemetry(path)
        assert summary["consistent"]
        assert summary["probe_cache_misses"] >= 1
        assert summary["probe_cache_hits"] >= 1
        spans = [
            json.loads(line)
            for line in open(path, encoding="utf-8")
            if '"probe_cache"' in line
        ]
        assert len(spans) == 2
        assert all("hits" in span and "misses" in span for span in spans)


class TestRunnerIntegration:
    def test_pooled_vector_matches_serial_object(self):
        plan = TrialPlan.monte_carlo(
            "pooled", "ba_one_half", (0, 0, 1, 1, 1), 2,
            trials=12, params={"kappa": 2}, adversary="straddle12",
            adversary_params={"victims": (3, 4)}, seed=9,
        )
        obj = ParallelRunner(workers=1).run(plan).results
        vec = ParallelRunner(
            workers=2, backend="vector", chunk_size=5
        ).run(plan).results
        assert [canon(a) for a in obj] == [canon(b) for b in vec]

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ParallelRunner(backend="gpu")

    def test_adaptive_runner_vector_matches_object(self):
        from repro.engine import AdaptiveRunner

        plan = TrialPlan.monte_carlo(
            "adaptive-vec", "ba_one_third", (0, 0, 1, 1), 1,
            trials=20, params={"kappa": 2}, adversary="straddle13",
            adversary_params={"victims": (3,)}, seed=13,
        )
        kwargs = dict(workers=1, batch_size=7, early_stop=False)
        obj = AdaptiveRunner(**kwargs).run(plan, bounds=0.25)
        vec = AdaptiveRunner(backend="vector", **kwargs).run(plan, bounds=0.25)
        assert [canon(r) for r in obj.executed_results()] == [
            canon(r) for r in vec.executed_results()
        ]
        assert obj.verdicts() == vec.verdicts()

    def test_vector_batch_telemetry_span(self, tmp_path):
        from repro.obs import TelemetryWriter, summarize_telemetry

        path = str(tmp_path / "telemetry.jsonl")
        plan = TrialPlan.monte_carlo(
            "tele", "ba_one_third", (0, 0, 1, 1), 1,
            trials=5, params={"kappa": 2}, seed=2,
        )
        with TelemetryWriter(path) as telemetry:
            ParallelRunner(
                workers=1, backend="vector", telemetry=telemetry
            ).run(plan)
        summary = summarize_telemetry(path)
        assert summary["consistent"]
        import json

        events = [
            json.loads(line)
            for line in open(path, encoding="utf-8")
            if '"vector_batch"' in line
        ]
        assert len(events) == 1
        assert events[0]["batched"] == 5
        assert events[0]["fallback"] == 0
        assert events[0]["batches"] == 1
