"""Benchmark-suite configuration parsing is strict where it must be.

``REPRO_BENCH_BACKEND`` selects which executor produces published
numbers; a typo silently falling back to the object simulator would
label one backend's results with another's name.  Unknown values are
therefore a hard error naming the valid set — pinned here, alongside
the deliberately *lenient* ``REPRO_BENCH_WORKERS`` parsing (a stray
worker count must never abort collection of the whole suite).
"""

import pytest

from benchmarks.conftest import (
    VALID_BENCH_BACKENDS,
    bench_backend,
    bench_workers,
)


class TestBenchBackend:
    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_BACKEND", raising=False)
        assert bench_backend() == "object"
        assert bench_backend(default="vector") == "vector"

    @pytest.mark.parametrize("value", VALID_BENCH_BACKENDS)
    def test_valid_values_pass_through(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_BENCH_BACKEND", value)
        assert bench_backend() == value

    @pytest.mark.parametrize("value", ["vectro", "OBJECT", "numpy", "1"])
    def test_unknown_value_errors_and_lists_valid_backends(
        self, monkeypatch, value
    ):
        monkeypatch.setenv("REPRO_BENCH_BACKEND", value)
        with pytest.raises(ValueError) as excinfo:
            bench_backend()
        message = str(excinfo.value)
        assert repr(value) in message
        for backend in VALID_BENCH_BACKENDS:
            assert backend in message


class TestBenchWorkers:
    def test_non_integer_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "many")
        with pytest.warns(UserWarning, match="REPRO_BENCH_WORKERS"):
            assert bench_workers(default=1) == 1

    def test_non_positive_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "0")
        with pytest.warns(UserWarning, match="must be >= 1"):
            assert bench_workers(default=2) == 2
