"""Benchmark-suite configuration parsing is strict where it must be.

``REPRO_BENCH_BACKEND`` selects which executor produces published
numbers; a typo silently falling back to the object simulator would
label one backend's results with another's name.  Unknown values are
therefore a hard error naming the valid set — pinned here, alongside
the deliberately *lenient* ``REPRO_BENCH_WORKERS`` parsing (a stray
worker count must never abort collection of the whole suite).
"""

import pathlib

import pytest

from benchmarks.conftest import (
    VALID_BENCH_BACKENDS,
    bench_backend,
    bench_workers,
)

BENCHMARKS_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"


class TestBenchBackend:
    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_BACKEND", raising=False)
        assert bench_backend() == "object"
        assert bench_backend(default="vector") == "vector"

    @pytest.mark.parametrize("value", VALID_BENCH_BACKENDS)
    def test_valid_values_pass_through(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_BENCH_BACKEND", value)
        assert bench_backend() == value

    @pytest.mark.parametrize("value", ["vectro", "OBJECT", "numpy", "1"])
    def test_unknown_value_errors_and_lists_valid_backends(
        self, monkeypatch, value
    ):
        monkeypatch.setenv("REPRO_BENCH_BACKEND", value)
        with pytest.raises(ValueError) as excinfo:
            bench_backend()
        message = str(excinfo.value)
        assert repr(value) in message
        for backend in VALID_BENCH_BACKENDS:
            assert backend in message


class TestEveryBenchmarkDrivesTheEngine:
    """No benchmark may bypass the engine with a hand-built simulator.

    ``REPRO_BENCH_WORKERS`` / ``REPRO_BENCH_BACKEND`` only apply to
    executions routed through :func:`benchmarks.conftest.run_plan`; a
    direct ``SyncSimulator`` (or a private ``ExperimentSetup`` loop)
    would silently ignore both and publish serial-object numbers under
    whatever label the environment selected.
    """

    BANNED = ("SyncSimulator", "ExperimentSetup", "run_trials(")

    def test_no_direct_simulator_construction_in_benchmarks(self):
        offenders = []
        for path in sorted(BENCHMARKS_DIR.glob("bench_*.py")):
            source = path.read_text(encoding="utf-8")
            for needle in self.BANNED:
                if needle in source:
                    offenders.append((path.name, needle))
        assert not offenders, (
            "benchmarks must execute through benchmarks.conftest.run_plan; "
            f"found direct simulator/harness use: {offenders}"
        )

    def test_benchmarks_dir_exists_and_is_nonempty(self):
        # Guard the guard: if the glob ever matches nothing, the ban
        # above would vacuously pass.
        assert len(list(BENCHMARKS_DIR.glob("bench_*.py"))) >= 8


class TestBenchWorkers:
    def test_non_integer_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "many")
        with pytest.warns(UserWarning, match="REPRO_BENCH_WORKERS"):
            assert bench_workers(default=1) == 1

    def test_non_positive_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "0")
        with pytest.warns(UserWarning, match="must be >= 1"):
            assert bench_workers(default=2) == 2
