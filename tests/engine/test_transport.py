"""The compact wire format is lossless — and actually smaller.

Three regression suites:

* ``TrialSummary``/``ChunkSummary`` pack→unpack round-trips equal the
  original ``ExecutionResult`` field for field, for **every** registered
  protocol × adversary combination (incompatible combos must fail
  identically on both paths, i.e. before packing is ever reached);
* ``transport="compact"`` and ``transport="pickle"`` produce identical
  results through both runners, any worker count;
* the compact payload is ≥5x smaller than the full pickle on a
  signature-heavy plan, and non-terminating parties stay *absent* from
  ``finish_rounds`` (never ``None``) through the compact path.
"""

import pytest

from ..conftest import PROTOCOL_SHAPES
from repro.engine import (
    AdaptiveRunner,
    ChunkSummary,
    ParallelRunner,
    TrialPlan,
    TrialSpec,
    TrialSummary,
    adversary_names,
    measure_payload_bytes,
    protocol_names,
    register_protocol,
    run_trial,
)


def _stubborn_program(ctx, value):
    """Party 3 never finishes; everyone else decides after one round.

    With party 3 corrupted, the simulator stops as soon as the honest
    parties are done and the stuck shadow is simply *absent* from
    ``outputs``/``finish_rounds`` — the non-terminating-trial shape the
    transport must preserve exactly (absent, never ``None``).
    """
    if ctx.party_id == 3:
        while True:
            yield {}
    yield {}
    return value


register_protocol(
    "_test_stubborn", lambda: (lambda ctx, v: _stubborn_program(ctx, v))
)

# Per-protocol sweep shapes: (inputs, max_faulty, params) — shared with
# the trace round-trip property in tests/obs/test_replay.py.
_PROTOCOL_SHAPES = PROTOCOL_SHAPES

# Per-adversary victim sets sized to each regime's corruption budget.
def _adversary_params(adversary, max_faulty, num_parties):
    victims = tuple(range(num_parties - max_faulty, num_parties))
    if adversary == "grade_split":
        return {"victims": victims, "target": 0, "boost_value": 0}
    return {"victims": victims}


def _spec(protocol, adversary, seed=3):
    inputs, max_faulty, params = _PROTOCOL_SHAPES[protocol]
    return TrialSpec(
        protocol=protocol,
        inputs=inputs,
        max_faulty=max_faulty,
        params=params,
        adversary=adversary,
        adversary_params=(
            _adversary_params(adversary, max_faulty, len(inputs))
            if adversary
            else ()
        ),
        seed=seed,
        session=f"wire-{protocol}-{adversary}",
        max_rounds=64,
    )


def _assert_lossless(result, spec):
    """Round-trip one result through both wire layers and compare."""
    rebuilt = TrialSummary.pack(result).unpack(spec)
    assert rebuilt == result
    # Dict *iteration order* is not part of ==; downstream consumers
    # iterate these, so insertion order must survive too.
    assert list(rebuilt.outputs) == list(result.outputs)
    assert list(rebuilt.finish_rounds) == list(result.finish_rounds)
    (index, chunk_rebuilt), = ChunkSummary.pack([(7, result)]).unpack(
        {7: spec}
    )
    assert index == 7 and chunk_rebuilt == result


class TestEveryRegisteredPair:
    def test_shapes_cover_every_stock_protocol(self):
        # The registry is global and other test modules register their
        # own protocols, so assert coverage, not exact equality: every
        # shape names a registered protocol, and every *stock* protocol
        # (registered by repro.engine.registry itself, no test_ prefix)
        # has a shape.
        registered = set(protocol_names())
        assert set(_PROTOCOL_SHAPES) <= registered
        stock = {
            name
            for name in registered
            if not name.startswith(("test_", "_test"))
        }
        assert stock == set(_PROTOCOL_SHAPES)

    def test_pack_unpack_roundtrips_every_pair(self):
        """Every protocol × adversary combo either runs and round-trips
        losslessly, or fails before transport is reached (in which case
        there is no payload whose fidelity could differ)."""
        survived = []
        for protocol in _PROTOCOL_SHAPES:
            for adversary in [None] + adversary_names():
                spec = _spec(protocol, adversary)
                try:
                    result = run_trial(spec)
                except Exception:
                    continue  # incompatible combo: fails pre-transport
                _assert_lossless(result, spec)
                survived.append((protocol, adversary))
        # The compatibility matrix must not silently collapse: at the
        # very least every protocol runs adversary-free.
        assert len(survived) >= len(protocol_names())

    def test_non_integer_outputs_use_fallback(self):
        spec = _spec("fm_probabilistic", None)
        result = run_trial(spec)
        summary = TrialSummary.pack(result)
        assert summary.outputs is not None  # FMDecision objects
        assert summary.unpack(spec) == result

    def test_integer_outputs_pack_into_blob(self):
        spec = _spec("ba_one_third", "straddle13")
        result = run_trial(spec)
        summary = TrialSummary.pack(result)
        assert summary.outputs is None  # bit decisions ride the blob
        assert summary.unpack(spec) == result


def _mixed_plan(trials=4):
    return TrialPlan.concat(
        "wire-mixed",
        [
            TrialPlan.monte_carlo(
                name="one_third",
                protocol="ba_one_third",
                inputs=(0, 0, 1, 1),
                max_faulty=1,
                trials=trials,
                params={"kappa": 2},
                adversary="straddle13",
                adversary_params={"victims": (3,)},
                seed=11,
            ),
            # Non-integer outputs: exercises the pickled fallback lane.
            TrialPlan.monte_carlo(
                name="lasvegas",
                protocol="fm_probabilistic",
                inputs=(0, 1, 0, 1),
                max_faulty=1,
                trials=trials,
                seed=13,
            ),
        ],
    )


class TestTransportEquivalence:
    def test_compact_equals_pickle_equals_serial(self):
        plan = _mixed_plan()
        serial = ParallelRunner(workers=1).run(plan)
        compact = ParallelRunner(workers=2, chunk_size=3).run(plan)
        full = ParallelRunner(
            workers=2, chunk_size=3, transport="pickle"
        ).run(plan)
        assert compact.results == serial.results
        assert full.results == serial.results
        assert compact.transport == "compact"
        assert full.transport == "pickle"

    def test_adaptive_compact_equals_pickle(self):
        plan = _mixed_plan()
        kwargs = dict(workers=2, batch_size=3, early_stop=False)
        compact = AdaptiveRunner(**kwargs).run(plan, 0.5)
        full = AdaptiveRunner(transport="pickle", **kwargs).run(plan, 0.5)
        assert compact.results == full.results
        assert [r is not None for r in compact.results] == [True] * len(plan)

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            ParallelRunner(transport="msgpack")
        with pytest.raises(ValueError, match="transport"):
            AdaptiveRunner(transport="json")


class TestPayloadReduction:
    def test_signature_heavy_plan_shrinks_5x(self):
        plan = TrialPlan.monte_carlo(
            name="payload",
            protocol="ba_one_third",
            inputs=(0, 0, 1, 1),
            max_faulty=1,
            trials=40,
            params={"kappa": 8},
            adversary="straddle13",
            adversary_params={"victims": (3,)},
            seed=8,
            collect_signatures=True,
        )
        results = ParallelRunner(workers=1).run(plan).results
        full, compact = measure_payload_bytes(
            list(enumerate(results)), chunk_size=10
        )
        assert full / compact >= 5.0, (full, compact)


class TestNonTerminatingFinishRounds:
    """Satellite regression: a party that never finishes is *absent*
    from ``finish_rounds`` — never mapped to ``None`` — and the compact
    path preserves that exactly, on both metrics code paths."""

    def _stuck_spec(self):
        return TrialSpec(
            protocol="_test_stubborn",
            inputs=(1, 0, 1, 1),
            max_faulty=1,
            adversary="crash",
            adversary_params={"victims": (3,), "crash_round": 2},
            seed=5,
            session="wire-stuck",
            max_rounds=64,
        )

    def test_compact_and_legacy_agree_on_absent_parties(self):
        spec = self._stuck_spec()
        modern = run_trial(spec)
        legacy = run_trial(spec, legacy_metrics=True)
        assert 3 in modern.corrupted
        for result in (modern, legacy):
            assert 3 not in result.finish_rounds
            assert 3 not in result.outputs
            assert None not in result.finish_rounds.values()
            assert sorted(result.finish_rounds) == [0, 1, 2]
        assert modern.finish_rounds == legacy.finish_rounds
        for result in (modern, legacy):
            rebuilt = TrialSummary.pack(result).unpack(spec)
            assert rebuilt == result
            assert 3 not in rebuilt.finish_rounds
            assert None not in rebuilt.finish_rounds.values()


class TestTruncatedPayloads:
    """Corrupted blobs fail with ``TransportError``, never ``IndexError``.

    A half-written pipe or a bit-rotted cache hands ``unpack`` a prefix
    of a valid payload.  Every such prefix must surface as the one
    well-named transport failure — these tests cut real packed payloads
    at *every* byte boundary and assert the decoder never leaks a bare
    ``IndexError`` (the pre-hardening behavior for e.g.
    ``ChunkSummary(blob=b'\\x05\\x01')``).
    """

    def _packed_chunk(self):
        spec = _spec("ba_one_third", "straddle13")
        result = run_trial(spec)
        return ChunkSummary.pack([(0, result)]), spec

    def test_transport_error_is_a_value_error(self):
        from repro.engine import TransportError

        assert issubclass(TransportError, ValueError)

    def test_regression_bare_index_error(self):
        # The original report: a two-byte blob declaring five trials.
        from repro.engine import TransportError

        with pytest.raises(TransportError, match="truncated"):
            ChunkSummary(blob=b"\x05\x01").unpack({})

    def test_mid_varint_truncation(self):
        # A multi-byte varint cut after its continuation byte: the
        # decoder must notice the missing tail, not run off the end.
        from repro.engine import TransportError

        with pytest.raises(TransportError, match="truncated varint"):
            ChunkSummary(blob=b"\x80").unpack({})

    def test_every_trial_summary_prefix_raises_transport_error(self):
        from repro.engine import TransportError

        spec = _spec("ba_one_third", "straddle13")
        summary = TrialSummary.pack(run_trial(spec))
        assert summary.unpack(spec)  # the full blob still decodes
        for cut in range(len(summary.blob)):
            with pytest.raises(TransportError):
                TrialSummary(blob=summary.blob[:cut]).unpack(spec)

    def test_every_chunk_prefix_raises_transport_error(self):
        from repro.engine import TransportError

        chunk, spec = self._packed_chunk()
        assert chunk.unpack({0: spec})  # the full blob still decodes
        for cut in range(len(chunk.blob)):
            truncated = ChunkSummary(
                blob=chunk.blob[:cut], fallbacks=chunk.fallbacks
            )
            with pytest.raises(TransportError):
                truncated.unpack({0: spec})
