"""Engine threading of ``repro-metrics/1`` collection.

The acceptance contract: for the same ``(seed, plan)`` the metrics
artifact is byte-identical whether trials ran serially, pooled across
workers, or on the vector backend (which falls back per-spec, audited
under the ``"metrics collection requested"`` reason) — and turning
collection *off* leaves execution byte-identical to a runner that never
heard of metrics.  Profiling rides the same seam: per-chunk ``cProfile``
dumps must attribute at least 90% of telemetry busy seconds.
"""

import json
import os

import pytest

from repro.engine import (
    AdaptiveRunner,
    ChunkSummary,
    ParallelRunner,
    TrialPlan,
    run_measured_trial,
)
from repro.engine.vectorized import execute_chunk
from repro.obs import (
    METRICS_SCHEMA,
    MetricsRegistry,
    TelemetryWriter,
    load_profile_summary,
    summarize_telemetry,
    validate_metrics_payload,
)


def _plan(trials=8, seed=17, kappa=2, name="metrics-engine"):
    return TrialPlan.monte_carlo(
        name=name,
        protocol="ba_one_third",
        inputs=(0, 0, 1, 1),
        max_faulty=1,
        trials=trials,
        params={"kappa": kappa},
        adversary="straddle13",
        adversary_params={"victims": (3,)},
        seed=seed,
    )


def _artifact_bytes(result):
    return json.dumps(result.metrics_payload(), sort_keys=True).encode()


class TestBackendIdentity:
    def test_serial_pooled_vector_artifacts_identical(self):
        plan = _plan()
        serial = ParallelRunner(workers=1, metrics=True).run(plan)
        pooled = ParallelRunner(workers=2, chunk_size=3, metrics=True).run(plan)
        vector = ParallelRunner(workers=1, backend="vector", metrics=True).run(plan)
        vecpool = ParallelRunner(
            workers=2, chunk_size=3, backend="vector", metrics=True
        ).run(plan)
        reference = _artifact_bytes(serial)
        assert _artifact_bytes(pooled) == reference
        assert _artifact_bytes(vector) == reference
        assert _artifact_bytes(vecpool) == reference
        assert serial.results == pooled.results == vector.results

    def test_artifact_validates_and_counts_trials(self):
        plan = _plan()
        result = ParallelRunner(workers=1, metrics=True).run(plan)
        payload = result.metrics_payload()
        assert payload["schema"] == METRICS_SCHEMA
        assert validate_metrics_payload(payload) == []
        totals = MetricsRegistry.from_payload(payload["totals"])
        assert totals.counter_total("trials") == len(plan)

    def test_metrics_off_is_byte_identical_to_pre_metrics_runner(self):
        plan = _plan()
        plain = ParallelRunner(workers=1).run(plan)
        collected = ParallelRunner(workers=1, metrics=True).run(plan)
        assert plain.results == collected.results
        assert plain.trial_metrics is None
        assert len(collected.trial_metrics) == len(plan)

    def test_metrics_registry_raises_without_collection(self):
        result = ParallelRunner(workers=1).run(_plan(trials=2))
        with pytest.raises(ValueError, match="metrics"):
            result.metrics_registry()


class TestRunnerValidation:
    def test_metrics_rejects_legacy_baseline(self):
        with pytest.raises(ValueError, match="legacy"):
            ParallelRunner(workers=1, metrics=True, legacy_metrics=True)

    def test_metrics_requires_compact_transport(self):
        with pytest.raises(ValueError, match="compact"):
            ParallelRunner(workers=1, metrics=True, transport="pickle")

    def test_run_iter_requires_a_sink_when_collecting(self):
        runner = ParallelRunner(workers=1, metrics=True)
        with pytest.raises(ValueError, match="sink"):
            next(runner.run_iter(_plan(trials=2)))


class TestVectorFallbackAccounting:
    def test_metrics_forces_object_fallback_with_reason(self):
        chunk = list(enumerate(_plan(trials=3).trials))
        sink = {}
        results, stats = execute_chunk(chunk, metrics=sink)
        assert len(results) == len(chunk)
        assert stats["batched"] == 0
        assert stats["fallback"] == len(chunk)
        assert stats["fallback_reasons"] == {
            "metrics collection requested": len(chunk)
        }
        assert sorted(sink) == [0, 1, 2]
        bare, _ = execute_chunk(chunk)
        assert [r for _, r in bare] == [r for _, r in results]


class TestChunkSummaryTransport:
    def test_metrics_blobs_roundtrip(self):
        specs = _plan(trials=3).trials
        pairs = []
        registries = {}
        for index, spec in enumerate(specs):
            result, registry = run_measured_trial(spec, index=index)
            pairs.append((index, result))
            registries[index] = registry
        summary = ChunkSummary.pack(pairs, metrics=registries)
        rebuilt = summary.unpack_metrics()
        assert rebuilt == registries

    def test_metrics_field_defaults_empty(self):
        specs = _plan(trials=2).trials
        pairs = [
            (i, run_measured_trial(s, index=i)[0]) for i, s in enumerate(specs)
        ]
        summary = ChunkSummary.pack(pairs)
        assert summary.metrics == ()
        assert summary.unpack_metrics() == {}


class TestAdaptiveMetrics:
    def test_serial_and_pooled_merges_match_fixed_runner(self):
        plan = _plan(trials=8, name="adaptive-metrics")
        serial = AdaptiveRunner(
            workers=1, metrics=True, batch_size=4, early_stop=False
        ).run(plan, 0.25)
        pooled = AdaptiveRunner(
            workers=2, metrics=True, batch_size=4, early_stop=False
        ).run(plan, 0.25)
        assert serial.trial_metrics is not None
        merged_serial = serial.metrics_registry()
        merged_pooled = pooled.metrics_registry()
        assert merged_serial == merged_pooled
        # With early stopping off the adaptive run executes every trial,
        # so its merge must equal the fixed runner's.
        fixed = ParallelRunner(workers=1, metrics=True).run(plan)
        assert merged_serial == fixed.metrics_registry()

    def test_metrics_requires_compact_transport(self):
        with pytest.raises(ValueError, match="compact"):
            AdaptiveRunner(workers=1, metrics=True, transport="pickle")


class TestProfiling:
    def test_profile_attributes_most_of_busy_time(self, tmp_path):
        # A realistic (not micro) workload: cProfile's tracing overhead
        # on tiny chunks would sink the ratio for reasons that have
        # nothing to do with attribution correctness.
        plan = TrialPlan.monte_carlo(
            name="profiled",
            protocol="ba_one_third",
            inputs=(0, 0, 1, 1, 1, 1, 1),
            max_faulty=2,
            trials=60,
            params={"kappa": 4},
            adversary="straddle13",
            adversary_params={"victims": (5,)},
            seed=23,
        )
        profile_dir = str(tmp_path / "prof")
        tele_path = str(tmp_path / "telemetry.jsonl")
        tele = TelemetryWriter(tele_path)
        runner = ParallelRunner(
            workers=2, chunk_size=10, profile_dir=profile_dir, telemetry=tele
        )
        result = runner.run(plan)
        tele.close()
        assert len(result) == len(plan)
        summary = summarize_telemetry(tele_path)
        profile = load_profile_summary(profile_dir)
        assert profile is not None
        dumps = [n for n in os.listdir(profile_dir) if n.endswith(".pstats")]
        assert dumps
        busy = summary["busy_seconds"]
        if busy > 0:
            assert profile["total_seconds"] / busy >= 0.90

    def test_inline_profile_written_for_serial_runner(self, tmp_path):
        profile_dir = str(tmp_path / "prof")
        runner = ParallelRunner(workers=1, profile_dir=profile_dir)
        runner.run(_plan(trials=4, name="inline-prof"))
        profile = load_profile_summary(profile_dir)
        assert profile is not None and profile["files"] == 1
        assert profile["functions"]
