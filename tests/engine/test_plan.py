"""TrialSpec / TrialPlan: validation, seed schedule, immutability."""

import pickle

import pytest

from repro.engine import (
    TrialPlan,
    TrialSpec,
    derive_trial_seed,
    derive_trial_session,
)


class TestSeedSchedule:
    def test_matches_legacy_run_trials_schedule(self):
        # run_trials has always used seed*1_000_003 + trial / f"exp{seed}/{trial}".
        assert derive_trial_seed(7, 0) == 7 * 1_000_003
        assert derive_trial_seed(7, 12) == 7 * 1_000_003 + 12
        assert derive_trial_session(7, 12) == "exp7/12"

    def test_streams_never_collide_below_stride(self):
        seen = set()
        for base in (0, 1, 2):
            for index in range(100):
                seen.add(derive_trial_seed(base, index))
        assert len(seen) == 300


class TestTrialSpec:
    def _spec(self, **overrides):
        fields = dict(
            protocol="ba_one_third",
            inputs=(0, 1, 1, 0),
            max_faulty=1,
            params=(("kappa", 2),),
        )
        fields.update(overrides)
        return TrialSpec(**fields)

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError, match="0 <= t < n"):
            self._spec(max_faulty=4)
        with pytest.raises(ValueError, match="0 <= t < n"):
            self._spec(max_faulty=-1)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            self._spec(backend="quantum")

    def test_coerces_inputs_to_tuple(self):
        spec = self._spec(inputs=[1, 0, 1, 0])
        assert spec.inputs == (1, 0, 1, 0)
        assert spec.num_parties == 4

    def test_param_dict_views(self):
        spec = self._spec(
            adversary="straddle13", adversary_params=(("victims", (3,)),)
        )
        assert spec.param_dict == {"kappa": 2}
        assert spec.adversary_param_dict == {"victims": (3,)}

    def test_suite_key_ignores_protocol_and_seed(self):
        a = self._spec(seed=1)
        b = self._spec(seed=2, protocol="ba_one_half", params=(("kappa", 9),))
        assert a.suite_key == b.suite_key == ("ideal", 4, 1, 0, 256)

    def test_is_hashable_and_picklable(self):
        spec = self._spec()
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert len({spec, self._spec()}) == 1

    def test_dict_params_normalize_to_frozen_form(self):
        # The natural direct construction: plain dicts.  They must come
        # out identical to the canonical frozen-tuple form, or the spec
        # is unhashable and breaks the runner's picklable contract.
        direct = self._spec(
            params={"kappa": 2},
            adversary="straddle13",
            adversary_params={"victims": (3,)},
        )
        frozen = self._spec(
            params=(("kappa", 2),),
            adversary="straddle13",
            adversary_params=(("victims", (3,)),),
        )
        assert direct == frozen
        assert hash(direct) == hash(frozen)
        assert pickle.loads(pickle.dumps(direct)) == direct

    def test_dict_params_with_unhashable_values_are_frozen_deeply(self):
        spec = self._spec(
            adversary="straddle13", adversary_params={"victims": [3]}
        )
        assert spec.adversary_params == (("victims", (3,)),)
        assert len({spec}) == 1  # hashable

    def test_params_are_canonically_sorted(self):
        a = self._spec(params={"b": 1, "a": 2})
        b = self._spec(params={"a": 2, "b": 1})
        assert a == b
        assert a.params == (("a", 2), ("b", 1))

    def test_non_mapping_params_rejected_loudly(self):
        with pytest.raises(TypeError, match="params"):
            self._spec(params=3)
        with pytest.raises(TypeError, match="params"):
            self._spec(params="kappa=2")
        with pytest.raises(TypeError, match="adversary_params"):
            self._spec(adversary_params=("victims", (3,)))  # not pairs


class TestTrialPlan:
    def _plan(self, trials=5, seed=3, **overrides):
        fields = dict(
            name="p",
            protocol="ba_one_third",
            inputs=(0, 0, 1, 1),
            max_faulty=1,
            trials=trials,
            params={"kappa": 2},
            adversary="straddle13",
            adversary_params={"victims": (3,)},
            seed=seed,
        )
        fields.update(overrides)
        return TrialPlan.monte_carlo(**fields)

    def test_monte_carlo_applies_seed_schedule(self):
        plan = self._plan(trials=4, seed=9)
        assert [spec.seed for spec in plan] == [
            derive_trial_seed(9, i) for i in range(4)
        ]
        assert [spec.session for spec in plan] == [
            derive_trial_session(9, i) for i in range(4)
        ]

    def test_monte_carlo_freezes_params_canonically(self):
        plan = self._plan(trials=1, params={"kappa": 2})
        assert plan.trials[0].params == (("kappa", 2),)

    def test_monte_carlo_rejects_zero_trials(self):
        with pytest.raises(ValueError, match="at least one"):
            self._plan(trials=0)

    def test_concat_preserves_order(self):
        merged = TrialPlan.concat(
            "both", [self._plan(trials=2, seed=1), self._plan(trials=3, seed=2)]
        )
        assert len(merged) == 5
        assert [spec.seed for spec in merged] == [
            derive_trial_seed(1, 0),
            derive_trial_seed(1, 1),
            derive_trial_seed(2, 0),
            derive_trial_seed(2, 1),
            derive_trial_seed(2, 2),
        ]

    def test_describe_summarizes(self):
        merged = TrialPlan.concat(
            "both",
            [
                self._plan(trials=2),
                self._plan(
                    trials=2,
                    protocol="ba_one_half",
                    inputs=(0, 0, 1, 1, 1),
                    max_faulty=2,
                    adversary="straddle12",
                    adversary_params={"victims": (3, 4)},
                ),
            ],
        )
        assert merged.describe() == {
            "name": "both",
            "trials": 4,
            "protocols": ["ba_one_half", "ba_one_third"],
            "adversaries": ["straddle12", "straddle13"],
            "num_parties": [4, 5],
        }

    def test_plan_is_picklable(self):
        plan = self._plan()
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_monte_carlo_stamps_config_name(self):
        plan = self._plan(trials=3)
        assert all(spec.config == "p" for spec in plan)
        assert all(spec.config_key == "p" for spec in plan)

    def test_configs_group_in_plan_order(self):
        merged = TrialPlan.concat(
            "sweep", [self._plan(trials=2, seed=1), self._plan(trials=3, seed=2, name="q")]
        )
        assert merged.configs() == {"p": (0, 1), "q": (2, 3, 4)}
        assert list(merged.configs()) == ["p", "q"]

    def test_unnamed_specs_group_by_derived_key(self):
        from repro.engine import TrialSpec

        a = TrialSpec(
            protocol="ba_one_third", inputs=(0, 1, 1, 0), max_faulty=1,
            params={"kappa": 2}, seed=1, session="s1",
        )
        b = TrialSpec(
            protocol="ba_one_third", inputs=(0, 1, 1, 0), max_faulty=1,
            params={"kappa": 2}, seed=2, session="s2",
        )
        c = TrialSpec(
            protocol="ba_one_third", inputs=(0, 1, 1, 0), max_faulty=1,
            params={"kappa": 3}, seed=3, session="s3",
        )
        plan = TrialPlan(name="hand-built", trials=(a, b, c))
        groups = plan.configs()
        assert len(groups) == 2  # seeds/sessions don't split configs
        assert list(groups.values()) == [(0, 1), (2,)]
