"""Cross-module integration tests: the library end to end.

These tests exercise realistic compositions — the things a downstream user
actually does — rather than single modules: full BA over both crypto
backends, multivalued agreement feeding application data, adversaries
attacking complete stacks, and determinism of whole executions.
"""

import random

import pytest

from repro import (
    CrashAdversary,
    CryptoSuite,
    IdealCoin,
    MalformedAdversary,
    TwoFaceAdversary,
    ba_one_half_program,
    ba_one_third_program,
    ideal_coin_factory,
    multivalued_ba_program,
    run_protocol,
)
from repro.analysis.experiments import ExperimentSetup, disagreement_rate, run_trials

from .conftest import run


class TestPublicApiSurface:
    def test_readme_quickstart(self):
        result = run_protocol(
            lambda ctx, bit: ba_one_third_program(ctx, bit, kappa=16),
            inputs=[1, 0, 1, 0],
            max_faulty=1,
            seed=7,
        )
        assert result.honest_agree()

    def test_all_public_names_importable(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestWholeStackScenarios:
    def test_committee_block_agreement(self):
        """An Algorand-flavoured scenario: a committee of 7 agrees on a
        block hash under a crash of 2 members (t < n/3 would allow 2)."""
        proposals = ["h_A", "h_A", "h_A", "h_A", "h_B", "h_B", "h_A"]

        def program(ctx, proposal):
            return multivalued_ba_program(
                ctx,
                proposal,
                lambda c, b: ba_one_third_program(c, b, kappa=8),
                regime="one_third",
                default="EMPTY_BLOCK",
            )

        res = run(
            program, proposals, max_faulty=2,
            adversary=CrashAdversary(victims=[5, 6], crash_round=2),
            session="blocks",
        )
        values = set(res.honest_outputs.values())
        assert len(values) == 1
        assert values <= {"h_A", "h_B", "EMPTY_BLOCK"}

    def test_dishonest_minority_stack(self):
        """t = 2 of n = 5 with equivocation on the full t < n/2 stack."""
        factory = lambda c, b: ba_one_half_program(c, b, kappa=8)
        for seed in range(5):
            adversary = TwoFaceAdversary(victims=[3, 4], factory=factory)
            res = run(
                factory, [0, 1, 0, 1, 1], max_faulty=2,
                adversary=adversary, seed=seed, session=f"dm{seed}",
            )
            assert res.honest_agree()

    def test_mixed_adversary_sequence(self):
        """Different attacks against the same protocol and keys."""
        factory = lambda c, b: ba_one_third_program(c, b, kappa=6)
        for adversary in (
            None,
            CrashAdversary(victims=[3], crash_round=3),
            MalformedAdversary(victims=[3]),
            TwoFaceAdversary(victims=[3], factory=factory),
        ):
            res = run(
                factory, [1, 1, 1, 1], max_faulty=1,
                adversary=adversary, session="mix",
            )
            assert all(v == 1 for v in res.honest_outputs.values())

    def test_execution_fully_deterministic(self):
        factory = lambda c, b: ba_one_half_program(c, b, kappa=4)
        runs = [
            run(factory, [0, 1, 1, 0, 1], max_faulty=2, seed=9, session="det")
            for _ in range(2)
        ]
        assert runs[0].outputs == runs[1].outputs
        assert runs[0].metrics.per_round.keys() == runs[1].metrics.per_round.keys()
        assert runs[0].metrics.total_messages == runs[1].metrics.total_messages


class TestMonteCarloSanity:
    def test_error_probability_orders_of_magnitude(self):
        """kappa = 1 (error <= 1/2) must fail sometimes under attack while
        kappa = 10 (error <= 2^-10) must not, over the same 40 trials."""
        setup = ExperimentSetup(num_parties=4, max_faulty=1)

        def runner(kappa):
            factory = lambda c, b: ba_one_third_program(c, b, kappa=kappa)
            return disagreement_rate(
                run_trials(
                    setup,
                    factory,
                    [0, 0, 1, 1],
                    trials=40,
                    adversary_factory=lambda: TwoFaceAdversary(
                        victims=[3], factory=factory
                    ),
                )
            )

        assert runner(1) > 0.0
        assert runner(10) == 0.0


@pytest.mark.slow
class TestRealBackendIntegration:
    def test_full_stack_over_shoup_rsa(self):
        crypto = CryptoSuite.real(4, 1, random.Random(123), bits=128)
        res = run(
            lambda c, v: multivalued_ba_program(
                c, v,
                lambda cc, b: ba_one_third_program(cc, b, kappa=2),
                regime="one_third",
                default="none",
            ),
            ["tx1", "tx1", "tx2", "tx1"],
            max_faulty=1,
            crypto=crypto,
            session="realstack",
        )
        assert res.honest_agree()
