"""Tests for plain RSA-FDH signatures (real backend)."""

import random

import pytest

from repro.crypto.interfaces import CryptoError
from repro.crypto.rsa import RsaSignatureScheme, generate_rsa_keypair

BITS = 128  # tiny on purpose: tests exercise logic, not hardness


@pytest.fixture(scope="module")
def scheme():
    return RsaSignatureScheme.setup(3, BITS, random.Random(7))


class TestKeygen:
    def test_keypair_consistency(self):
        kp = generate_rsa_keypair(BITS, random.Random(3))
        assert kp.n.bit_length() in (BITS, BITS - 1)
        message = 0x1234567
        assert pow(pow(message, kp.d, kp.n), kp.e, kp.n) == message % kp.n

    def test_rejects_tiny_modulus(self):
        with pytest.raises(CryptoError):
            generate_rsa_keypair(16, random.Random(1))

    def test_deterministic_given_seed(self):
        a = generate_rsa_keypair(64, random.Random(9))
        b = generate_rsa_keypair(64, random.Random(9))
        assert (a.n, a.e, a.d) == (b.n, b.e, b.d)


class TestSignVerify:
    def test_roundtrip(self, scheme):
        sig = scheme.sign(0, ("block", 7))
        assert scheme.verify(0, sig, ("block", 7))

    def test_signature_is_deterministic_hence_unique(self, scheme):
        assert scheme.sign(1, "m") == scheme.sign(1, "m")

    def test_wrong_message_rejected(self, scheme):
        assert not scheme.verify(0, scheme.sign(0, "a"), "b")

    def test_wrong_signer_rejected(self, scheme):
        sig = scheme.sign(0, "a")
        assert not scheme.verify(1, sig, "a")

    def test_tampered_value_rejected(self, scheme):
        sig = scheme.sign(0, "a")
        tampered = type(sig)(signer=0, value=sig.value ^ 1)
        assert not scheme.verify(0, tampered, "a")

    def test_garbage_rejected_without_raising(self, scheme):
        assert not scheme.verify(0, None, "a")
        assert not scheme.verify(0, "sig", "a")
        assert not scheme.verify(0, scheme.sign(0, "a"), [1])  # bad term
        assert not scheme.verify(-1, scheme.sign(0, "a"), "a")

    def test_out_of_range_value_rejected(self, scheme):
        sig = scheme.sign(0, "a")
        huge = type(sig)(signer=0, value=10 ** 100)
        assert not scheme.verify(0, huge, "a")

    def test_sign_invalid_signer_raises(self, scheme):
        with pytest.raises(CryptoError):
            scheme.sign(5, "a")
