"""Tests for the common coin (threshold and ideal flavours)."""

import random

import pytest

from repro.crypto.coin import (
    IdealCoin,
    coin_message_tag,
    coin_value_from_signature,
    ideal_coin_program,
    threshold_coin_program,
)
from repro.crypto.ideal import IdealThresholdScheme

from ..conftest import ideal_suite, run


def coin_factory(low, high, index=0):
    def factory(ctx, _input):
        value = yield from threshold_coin_program(ctx, index, low, high)
        return value

    return factory


class TestThresholdCoin:
    def test_all_parties_agree_and_in_range(self):
        res = run(coin_factory(1, 16), [None] * 4, max_faulty=1, session="c1")
        values = set(res.outputs.values())
        assert len(values) == 1
        assert 1 <= values.pop() <= 16

    def test_one_round(self):
        res = run(coin_factory(1, 4), [None] * 4, max_faulty=1, session="c2")
        assert res.metrics.rounds == 1

    def test_different_indices_give_independent_values(self):
        seen = set()
        for index in range(12):
            res = run(
                coin_factory(1, 2 ** 30, index),
                [None] * 4,
                max_faulty=1,
                session="c3",
            )
            seen.add(next(iter(res.outputs.values())))
        assert len(seen) == 12  # 12 draws from 2^30 values never collide

    def test_deterministic_per_session_and_index(self):
        big = 2 ** 40
        a = run(coin_factory(1, big), [None] * 4, max_faulty=1, session="same")
        b = run(coin_factory(1, big), [None] * 4, max_faulty=1, session="same")
        assert a.outputs == b.outputs
        c = run(coin_factory(1, big), [None] * 4, max_faulty=1, session="other")
        # Different session → different signed message → (whp) new value.
        assert c.outputs[0] != a.outputs[0]

    def test_survives_withheld_corrupt_shares(self):
        from repro.adversary.strategies import CrashAdversary

        res = run(
            coin_factory(1, 64),
            [None] * 4,
            max_faulty=1,
            adversary=CrashAdversary(victims=[3], crash_round=1),
            session="c4",
        )
        values = {res.outputs[i] for i in (0, 1, 2)}
        assert len(values) == 1

    def test_roughly_uniform_over_indices(self):
        counts = [0, 0]
        for index in range(200):
            res = run(
                coin_factory(1, 2, index), [None] * 4, max_faulty=1, session="c5"
            )
            counts[res.outputs[0] - 1] += 1
        assert abs(counts[0] - 100) < 40


class TestCoinHelpers:
    def test_value_from_signature_matches_program(self):
        scheme = IdealThresholdScheme(4, 2, random.Random(5))
        message = coin_message_tag("s", 3)
        sig = scheme.combine(
            [(i, scheme.sign_share(i, message)) for i in range(2)], message
        )
        value = coin_value_from_signature(scheme, sig, "s", 3, 1, 10)
        assert 1 <= value <= 10
        assert value == coin_value_from_signature(scheme, sig, "s", 3, 1, 10)


class TestIdealCoin:
    def test_common_and_in_range(self):
        coin = IdealCoin(random.Random(3))

        def factory(ctx, _):
            value = yield from ideal_coin_program(ctx, coin, 0, 1, 8)
            return value

        res = run(factory, [None] * 4, max_faulty=1, session="ic")
        values = set(res.outputs.values())
        assert len(values) == 1
        assert 1 <= values.pop() <= 8
        assert res.metrics.rounds == 1

    def test_independent_secrets_give_independent_coins(self):
        a = IdealCoin(random.Random(1)).value(0, 1, 2 ** 40)
        b = IdealCoin(random.Random(2)).value(0, 1, 2 ** 40)
        assert a != b

    def test_uniformity(self):
        coin = IdealCoin(random.Random(9))
        counts = [0] * 4
        for index in range(400):
            counts[coin.value(index, 0, 3)] += 1
        for c in counts:
            assert abs(c - 100) < 45
