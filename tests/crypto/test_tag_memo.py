"""The tag-memoization layer must be invisible: identical tags, no cross-talk.

Regression tests for the caching added with the experiment engine — in
particular the key-injectivity hazards of Python dict keys (``0 == False
== 0.0`` as keys, while :func:`repro.crypto.random_oracle.encode_term`
distinguishes them).
"""

import random

import pytest

from repro.crypto.ideal import (
    IdealSignatureScheme,
    IdealThresholdScheme,
    set_tag_memoization,
)
from repro.crypto.ideal import _memo_key


@pytest.fixture
def plain():
    return IdealSignatureScheme(3, random.Random(7))


@pytest.fixture
def threshold():
    return IdealThresholdScheme(3, 2, random.Random(8))


class TestMemoTransparency:
    def test_memoized_tags_equal_unmemoized(self, plain, threshold):
        messages = [
            "m",
            0,
            False,
            (0, "vote", (1, 2)),
            b"raw",
            ("nested", ("deep", 3)),
        ]
        previous = set_tag_memoization(False)
        try:
            cold_plain = [plain.sign(1, m).tag for m in messages]
            cold_share = [threshold.sign_share(2, m).tag for m in messages]
        finally:
            set_tag_memoization(previous)
        warm_plain = [plain.sign(1, m).tag for m in messages]
        warm_share = [threshold.sign_share(2, m).tag for m in messages]
        assert warm_plain == cold_plain
        assert warm_share == cold_share

    def test_repeat_sign_hits_memo_and_stays_stable(self, plain):
        message = ("echo", 4, (0, 1))
        first = plain.sign(0, message)
        for _ in range(5):
            assert plain.sign(0, message) == first
            assert plain.verify(0, first, message)

    def test_toggle_returns_previous_setting(self):
        previous = set_tag_memoization(False)
        try:
            assert set_tag_memoization(True) is False
            assert set_tag_memoization(True) is True
        finally:
            set_tag_memoization(previous)


class TestKeyInjectivity:
    """Dict-key equality is coarser than encode_term — the memo key must
    not be."""

    def test_zero_false_zero_float_map_to_distinct_keys(self):
        assert _memo_key(0) != _memo_key(False)
        assert _memo_key(0) != _memo_key(0.0)
        assert _memo_key((0,)) != _memo_key((False,))
        assert _memo_key(1) != _memo_key(True)

    def test_signature_on_zero_does_not_verify_false(self, plain):
        # Warm the memo with the 0-message tag first, then probe False.
        sig_zero = plain.sign(0, 0)
        assert plain.verify(0, sig_zero, 0)
        assert not plain.verify(0, sig_zero, False)
        sig_false = plain.sign(0, False)
        assert sig_false.tag != sig_zero.tag

    def test_share_on_zero_does_not_verify_false(self, threshold):
        share = threshold.sign_share(1, 0)
        assert threshold.verify_share(1, share, 0)
        assert not threshold.verify_share(1, share, False)

    def test_non_term_message_still_fails_closed(self, plain):
        # Floats are not Terms: signing raises, and verification of a
        # cached-adjacent lookalike returns False rather than raising.
        sig = plain.sign(0, 0)
        assert not plain.verify(0, sig, 0.0)

    def test_str_and_bytes_stay_distinct(self, plain):
        assert plain.sign(0, "m").tag != plain.sign(0, b"m").tag


class TestCombinedMemo:
    def test_combine_and_verify_roundtrip_with_memo(self, threshold):
        message = ("decide", 1)
        shares = [(i, threshold.sign_share(i, message)) for i in range(2)]
        combined = threshold.combine(shares, message)
        assert threshold.verify(combined, message)
        assert threshold.combine(shares, message) == combined
        assert not threshold.verify(combined, ("decide", 0))
