"""Unit and property tests for Shamir secret sharing."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.shamir import (
    ShamirError,
    Share,
    reconstruct_secret,
    split_secret,
)

PRIME = 2 ** 61 - 1


class TestRoundtrip:
    @given(
        secret=st.integers(min_value=0, max_value=PRIME - 1),
        threshold=st.integers(min_value=1, max_value=6),
        extra=st.integers(min_value=0, max_value=4),
        seed=st.integers(min_value=0, max_value=2 ** 32),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_threshold_subset_reconstructs(self, secret, threshold, extra, seed):
        rng = random.Random(seed)
        num_shares = threshold + extra
        shares = split_secret(secret, threshold, num_shares, PRIME, rng)
        subset = rng.sample(shares, threshold)
        assert reconstruct_secret(subset) == secret

    @given(
        secret=st.integers(min_value=0, max_value=PRIME - 1),
        seed=st.integers(min_value=0, max_value=2 ** 32),
    )
    @settings(max_examples=30, deadline=None)
    def test_fewer_than_threshold_shares_are_uniform_ish(self, secret, seed):
        """t-1 shares determine nothing: for any candidate secret there is a
        consistent polynomial.  We verify the weaker executable statement
        that reconstructing from too few shares yields a wrong value almost
        surely rather than the secret (information-theoretic hiding is a
        mathematical fact; this guards against implementation mistakes like
        leaking the secret into every share)."""
        rng = random.Random(seed)
        shares = split_secret(secret, 3, 5, PRIME, rng)
        # Interpolating 2 of 3-threshold shares gives the *line* through
        # them at 0, which hits the secret only with probability 1/p
        # (~4e-19) — a deterministic-seed test never observes it.
        assert reconstruct_secret(shares[:2]) != secret
        assert reconstruct_secret(shares[1:3]) != secret

    def test_exact_threshold_boundary(self, rng):
        shares = split_secret(1234, 4, 7, PRIME, rng)
        assert reconstruct_secret(shares[:4]) == 1234
        assert reconstruct_secret(shares[3:7]) == 1234

    def test_all_shares_reconstruct(self, rng):
        shares = split_secret(99, 2, 6, PRIME, rng)
        assert reconstruct_secret(shares) == 99


class TestValidation:
    def test_threshold_bounds(self, rng):
        with pytest.raises(ShamirError):
            split_secret(1, 0, 3, PRIME, rng)
        with pytest.raises(ShamirError):
            split_secret(1, 4, 3, PRIME, rng)

    def test_modulus_too_small_for_shares(self, rng):
        with pytest.raises(ShamirError):
            split_secret(1, 2, 7, 7, rng)

    def test_empty_reconstruction_rejected(self):
        with pytest.raises(ShamirError):
            reconstruct_secret([])

    def test_duplicate_points_rejected(self, rng):
        shares = split_secret(5, 2, 3, PRIME, rng)
        with pytest.raises(ShamirError):
            reconstruct_secret([shares[0], shares[0]])

    def test_mixed_moduli_rejected(self, rng):
        a = split_secret(5, 2, 3, PRIME, rng)
        b = split_secret(5, 2, 3, 97, rng)
        with pytest.raises(ShamirError):
            reconstruct_secret([a[0], b[1]])

    def test_secret_reduced_modulo(self, rng):
        shares = split_secret(PRIME + 3, 2, 3, PRIME, rng)
        assert reconstruct_secret(shares[:2]) == 3
