"""Tests for Shoup threshold RSA (real threshold backend).

Key generation needs safe primes, so one small scheme is dealt per module
and shared; a couple of heavier checks are marked slow.
"""

import random

import pytest

from repro.crypto.interfaces import CryptoError
from repro.crypto.threshold_rsa import ThresholdRsaScheme, generate_threshold_rsa

BITS = 128


@pytest.fixture(scope="module")
def scheme():
    return generate_threshold_rsa(5, 3, BITS, random.Random(11))


class TestSetup:
    def test_parameters_exposed(self, scheme):
        assert scheme.num_parties == 5
        assert scheme.threshold == 3
        n, e = scheme.public_key
        assert n.bit_length() in (BITS, BITS - 1)
        assert e > scheme.num_parties

    def test_invalid_parameters_rejected(self):
        with pytest.raises(CryptoError):
            generate_threshold_rsa(3, 0, BITS, random.Random(1))
        with pytest.raises(CryptoError):
            generate_threshold_rsa(3, 4, BITS, random.Random(1))
        with pytest.raises(CryptoError):
            generate_threshold_rsa(3, 2, 32, random.Random(1))


class TestShares:
    def test_share_verifies(self, scheme):
        share = scheme.sign_share(0, "m")
        assert scheme.verify_share(0, share, "m")

    def test_share_bound_to_signer_and_message(self, scheme):
        share = scheme.sign_share(0, "m")
        assert not scheme.verify_share(1, share, "m")
        assert not scheme.verify_share(0, share, "other")

    def test_tampered_share_value_rejected(self, scheme):
        share = scheme.sign_share(0, "m")
        n, _ = scheme.public_key
        forged = type(share)(
            signer=0,
            value=(share.value * 2) % n,
            challenge=share.challenge,
            response=share.response,
        )
        assert not scheme.verify_share(0, forged, "m")

    def test_tampered_proof_rejected(self, scheme):
        share = scheme.sign_share(0, "m")
        forged = type(share)(
            signer=0,
            value=share.value,
            challenge=share.challenge ^ 1,
            response=share.response,
        )
        assert not scheme.verify_share(0, forged, "m")
        forged = type(share)(
            signer=0,
            value=share.value,
            challenge=share.challenge,
            response=share.response + 1,
        )
        assert not scheme.verify_share(0, forged, "m")

    def test_garbage_rejected_without_raising(self, scheme):
        assert not scheme.verify_share(0, None, "m")
        assert not scheme.verify_share(0, "share", "m")
        assert not scheme.verify_share(0, scheme.sign_share(0, "m"), [1])
        assert not scheme.verify_share(-3, scheme.sign_share(0, "m"), "m")

    def test_invalid_signer_raises(self, scheme):
        with pytest.raises(CryptoError):
            scheme.sign_share(9, "m")


class TestCombine:
    def test_combine_exact_threshold(self, scheme):
        shares = [(i, scheme.sign_share(i, "m")) for i in range(3)]
        sig = scheme.combine(shares, "m")
        assert scheme.verify(sig, "m")

    def test_uniqueness_across_subsets(self, scheme):
        """Shoup signatures are standard RSA-FDH: any subset combines to
        the identical signature (the coin depends on this)."""
        sig_a = scheme.combine(
            [(i, scheme.sign_share(i, "m")) for i in (0, 1, 2)], "m"
        )
        sig_b = scheme.combine(
            [(i, scheme.sign_share(i, "m")) for i in (1, 3, 4)], "m"
        )
        assert sig_a == sig_b
        assert scheme.signature_bytes(sig_a) == scheme.signature_bytes(sig_b)

    def test_combine_too_few_raises(self, scheme):
        shares = [(i, scheme.sign_share(i, "m")) for i in range(2)]
        with pytest.raises(CryptoError):
            scheme.combine(shares, "m")

    def test_combine_rejects_forged_share(self, scheme):
        shares = [(i, scheme.sign_share(i, "m")) for i in range(2)]
        shares.append((2, "forged"))
        with pytest.raises(CryptoError):
            scheme.combine(shares, "m")

    def test_try_combine_filters(self, scheme):
        indexed = [(i, scheme.sign_share(i, "m")) for i in range(3)]
        indexed.append((3, "junk"))
        sig = scheme.try_combine(indexed, "m")
        assert sig is not None and scheme.verify(sig, "m")

    def test_verify_rejects_garbage(self, scheme):
        assert not scheme.verify(None, "m")
        assert not scheme.verify("sig", "m")
        sig = scheme.combine(
            [(i, scheme.sign_share(i, "m")) for i in range(3)], "m"
        )
        assert not scheme.verify(sig, "other-message")

    def test_signature_bytes_round_length(self, scheme):
        sig = scheme.combine(
            [(i, scheme.sign_share(i, "m")) for i in range(3)], "m"
        )
        n, _ = scheme.public_key
        assert len(scheme.signature_bytes(sig)) == (n.bit_length() + 7) // 8


@pytest.mark.slow
class TestSlow:
    def test_larger_modulus_end_to_end(self):
        scheme = generate_threshold_rsa(4, 3, 256, random.Random(21))
        shares = [(i, scheme.sign_share(i, ("coin", 5))) for i in (0, 2, 3)]
        sig = scheme.combine(shares, ("coin", 5))
        assert scheme.verify(sig, ("coin", 5))

    def test_two_of_two(self):
        scheme = generate_threshold_rsa(2, 2, BITS, random.Random(31))
        shares = [(i, scheme.sign_share(i, "m")) for i in range(2)]
        assert scheme.verify(scheme.combine(shares, "m"), "m")
