"""Tests for the VRF-style coin (Chen–Micali flavour) and its weakness."""

import random
from collections import Counter

import pytest

from repro.adversary.coin_bias import WithholdingCoinAdversary
from repro.adversary.strategies import CrashAdversary
from repro.crypto.rsa import RsaSignatureScheme
from repro.crypto.vrf_coin import (
    vrf_coin_from_evaluations,
    vrf_coin_program,
    vrf_evaluate,
    vrf_verify,
)

from ..conftest import ideal_suite, run


def coin_factory(index=0, low=0, high=1):
    def factory(ctx, _):
        value = yield from vrf_coin_program(ctx, index, low, high)
        return value

    return factory


class TestVrfPrimitive:
    def test_evaluate_verify_roundtrip(self):
        scheme = ideal_suite(4, 1).plain
        value, proof = vrf_evaluate(scheme, 2, "s", 7)
        assert vrf_verify(scheme, 2, value, proof, "s", 7)

    def test_verification_binds_everything(self):
        scheme = ideal_suite(4, 1).plain
        value, proof = vrf_evaluate(scheme, 2, "s", 7)
        assert not vrf_verify(scheme, 1, value, proof, "s", 7)     # signer
        assert not vrf_verify(scheme, 2, value, proof, "s", 8)     # index
        assert not vrf_verify(scheme, 2, value, proof, "x", 7)     # session
        assert not vrf_verify(scheme, 2, value ^ 1, proof, "s", 7) # value
        assert not vrf_verify(scheme, 2, True, proof, "s", 7)      # bool trap

    def test_deterministic(self):
        scheme = ideal_suite(4, 1).plain
        assert vrf_evaluate(scheme, 0, "s", 1) == vrf_evaluate(scheme, 0, "s", 1)

    def test_real_rsa_backend_is_a_vrf(self):
        scheme = RsaSignatureScheme.setup(2, 128, random.Random(5))
        value, proof = vrf_evaluate(scheme, 0, "s", 3)
        assert vrf_verify(scheme, 0, value, proof, "s", 3)

    def test_coin_from_evaluations(self):
        assert vrf_coin_from_evaluations({}, "s", 0, 0, 1) is None
        coin = vrf_coin_from_evaluations({0: 5, 1: 3}, "s", 0, 0, 7)
        assert 0 <= coin <= 7
        # the minimum (party 1, value 3) decides, independent of others
        assert coin == vrf_coin_from_evaluations({1: 3, 2: 9}, "s", 0, 0, 7)


class TestVrfCoinProtocol:
    def test_all_parties_agree_without_adversary(self):
        res = run(coin_factory(), [None] * 4, 1, session="vc1")
        assert len(set(res.outputs.values())) == 1

    def test_roughly_uniform_passively(self):
        counts = Counter()
        for trial in range(200):
            res = run(coin_factory(trial), [None] * 4, 1, session=f"vc2-{trial}")
            counts[res.outputs[0]] += 1
        assert abs(counts[1] - 100) < 35

    def test_survives_silent_corrupt_parties(self):
        res = run(
            coin_factory(), [None] * 4, 1,
            adversary=CrashAdversary([3], crash_round=1), session="vc3",
        )
        values = {res.outputs[i] for i in (0, 1, 2)}
        assert len(values) == 1


class TestWithholdingBias:
    def test_bias_matches_half_plus_t_over_4n(self):
        """n=4, t=1: P(coin = preferred) = 1/2 + 1/16 = 0.5625."""
        trials = 300
        hits = 0
        for trial in range(trials):
            adversary = WithholdingCoinAdversary(
                [3], index=trial, low=0, high=1, preferred=1,
                session=f"vb-{trial}",
            )
            res = run(
                coin_factory(trial), [None] * 4, 1,
                adversary=adversary, session=f"vb-{trial}",
            )
            # the attack is consistent: all honest get the same coin
            assert len(set(res.honest_outputs.values())) == 1
            hits += next(iter(res.honest_outputs.values())) == 1
        rate = hits / trials
        assert 0.50 < rate < 0.64, rate  # significantly above fair

    def test_threshold_coin_is_immune_to_withholding(self):
        from repro.crypto.coin import threshold_coin_program

        def threshold_factory(index):
            def factory(ctx, _):
                value = yield from threshold_coin_program(ctx, index, 0, 1)
                return value

            return factory

        trials = 300
        hits = 0
        for trial in range(trials):
            res = run(
                threshold_factory(trial), [None] * 4, 1,
                adversary=CrashAdversary([3], crash_round=1),
                session=f"vt-{trial}",
            )
            hits += res.honest_outputs[0] == 1
        assert abs(hits / trials - 0.5) < 0.1
