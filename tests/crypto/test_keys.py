"""Tests for the trusted-setup crypto suite."""

import random

import pytest

from repro.crypto.keys import CryptoSuite


class TestIdealSuite:
    def test_thresholds_match_paper(self):
        suite = CryptoSuite.ideal(7, 2, random.Random(1))
        assert suite.quorum.threshold == 5   # n - t
        assert suite.coin.threshold == 3     # t + 1
        assert suite.plain.num_parties == 7

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CryptoSuite.ideal(0, 0, random.Random(1))
        with pytest.raises(ValueError):
            CryptoSuite.ideal(4, 4, random.Random(1))
        with pytest.raises(ValueError):
            CryptoSuite.ideal(4, -1, random.Random(1))

    def test_zero_faults_allowed(self):
        suite = CryptoSuite.ideal(3, 0, random.Random(1))
        assert suite.quorum.threshold == 3
        assert suite.coin.threshold == 1


@pytest.mark.slow
class TestRealSuite:
    def test_real_backend_end_to_end(self):
        suite = CryptoSuite.real(4, 1, random.Random(2), bits=128)
        sig = suite.plain.sign(0, "m")
        assert suite.plain.verify(0, sig, "m")
        shares = [(i, suite.quorum.sign_share(i, "q")) for i in range(3)]
        assert suite.quorum.verify(suite.quorum.combine(shares, "q"), "q")
        shares = [(i, suite.coin.sign_share(i, "c")) for i in range(2)]
        assert suite.coin.verify(suite.coin.combine(shares, "c"), "c")
