"""The coin's security property: unpredictable until an honest share flies.

Paper §2.2: "the value of Coin_k remains uniform from the view of the
adversary until the first honest party has queried CoinFlip on input k".
Concretely: ``t`` shares are strictly below the ``t + 1`` combining
threshold, so the adversary can neither combine the signature nor learn
anything about the hash — and the moment one honest share is released,
a rushing adversary *can* open the coin (which is allowed; the protocols
are designed so that this is already too late).
"""

import random

import pytest

from repro.crypto.coin import coin_message_tag, coin_value_from_signature
from repro.crypto.ideal import IdealThresholdScheme
from repro.crypto.interfaces import CryptoError
from repro.crypto.keys import CryptoSuite


class TestUnpredictability:
    def setup_method(self):
        self.suite = CryptoSuite.ideal(4, 1, random.Random(99))
        self.scheme = self.suite.coin  # (t+1)-of-n = 2-of-4

    def test_adversary_shares_alone_cannot_combine(self):
        """t = 1 corrupted share < threshold 2: combine must fail."""
        message = coin_message_tag("s", 0)
        corrupt_share = self.scheme.sign_share(3, message)
        with pytest.raises(CryptoError):
            self.scheme.combine([(3, corrupt_share)], message)
        assert self.scheme.try_combine([(3, corrupt_share)], message) is None

    def test_duplicated_corrupt_shares_do_not_help(self):
        message = coin_message_tag("s", 1)
        corrupt_share = self.scheme.sign_share(3, message)
        indexed = [(3, corrupt_share)] * 5  # replay storms change nothing
        assert self.scheme.try_combine(indexed, message) is None

    def test_one_honest_share_opens_the_coin(self):
        """The rushing adversary's legal power, verified end to end."""
        message = coin_message_tag("s", 2)
        honest_share = self.scheme.sign_share(0, message)
        corrupt_share = self.scheme.sign_share(3, message)
        signature = self.scheme.try_combine(
            [(0, honest_share), (3, corrupt_share)], message
        )
        assert signature is not None
        value = coin_value_from_signature(self.scheme, signature, "s", 2, 1, 4)
        assert 1 <= value <= 4

    def test_shares_for_other_indices_are_useless(self):
        """Shares on coin index k reveal nothing about index k' != k."""
        message_a = coin_message_tag("s", 10)
        message_b = coin_message_tag("s", 11)
        shares_on_a = [
            (i, self.scheme.sign_share(i, message_a)) for i in range(2)
        ]
        # Valid quorum for A...
        assert self.scheme.try_combine(shares_on_a, message_a) is not None
        # ...is garbage for B.
        assert self.scheme.try_combine(shares_on_a, message_b) is None

    def test_coin_values_distinct_across_indices(self):
        values = set()
        for index in range(24):
            message = coin_message_tag("s", index)
            signature = self.scheme.combine(
                [(i, self.scheme.sign_share(i, message)) for i in range(2)],
                message,
            )
            values.add(
                coin_value_from_signature(
                    self.scheme, signature, "s", index, 1, 2 ** 40
                )
            )
        assert len(values) == 24


@pytest.mark.slow
class TestUnpredictabilityRealBackend:
    def test_shoup_coin_below_threshold_fails(self):
        suite = CryptoSuite.real(4, 1, random.Random(123), bits=128)
        message = coin_message_tag("r", 0)
        share = suite.coin.sign_share(3, message)
        assert suite.coin.try_combine([(3, share)], message) is None
        honest = suite.coin.sign_share(1, message)
        signature = suite.coin.try_combine([(3, share), (1, honest)], message)
        assert signature is not None and suite.coin.verify(signature, message)
