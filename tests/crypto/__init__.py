"""Test package."""
