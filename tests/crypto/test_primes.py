"""Tests for primality testing and prime generation."""

import random

import pytest

from repro.crypto.primes import generate_prime, generate_safe_prime, is_probable_prime

KNOWN_PRIMES = [2, 3, 5, 7, 97, 251, 257, 65537, 2 ** 61 - 1, 2 ** 89 - 1]
KNOWN_COMPOSITES = [
    0, 1, 4, 9, 255, 561, 1105, 1729,  # Carmichael numbers included
    2 ** 61, (2 ** 31 - 1) * (2 ** 19 - 1),
]


class TestIsProbablePrime:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_accepts_known_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("c", KNOWN_COMPOSITES)
    def test_rejects_known_composites(self, c):
        assert not is_probable_prime(c)

    def test_rejects_negative(self):
        assert not is_probable_prime(-7)

    def test_agrees_with_sieve_below_2000(self):
        sieve = [True] * 2000
        sieve[0] = sieve[1] = False
        for i in range(2, 45):
            if sieve[i]:
                for j in range(i * i, 2000, i):
                    sieve[j] = False
        for n in range(2000):
            assert is_probable_prime(n) == sieve[n], n


class TestGeneratePrime:
    def test_exact_bit_length(self, rng):
        for bits in (8, 16, 32, 64):
            p = generate_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_rejects_tiny_request(self, rng):
        with pytest.raises(ValueError):
            generate_prime(2, rng)

    def test_deterministic_given_seed(self):
        assert generate_prime(32, random.Random(5)) == generate_prime(
            32, random.Random(5)
        )


class TestGenerateSafePrime:
    def test_structure(self, rng):
        p = generate_safe_prime(32, rng)
        assert p.bit_length() == 32
        assert is_probable_prime(p)
        assert is_probable_prime((p - 1) // 2)

    def test_rejects_tiny_request(self, rng):
        with pytest.raises(ValueError):
            generate_safe_prime(4, rng)
