"""Tests for the canonical term encoding and hash-to-range helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.random_oracle import (
    encode_term,
    hash_to_int,
    hash_to_range,
    oracle_digest,
)

# Nested terms: ints, strings, bytes, bools, None, tuples thereof.
terms = st.recursive(
    st.one_of(
        st.integers(min_value=-(2 ** 80), max_value=2 ** 80),
        st.text(max_size=20),
        st.binary(max_size=20),
        st.booleans(),
        st.none(),
    ),
    lambda children: st.lists(children, max_size=4).map(tuple),
    max_leaves=12,
)


def _same_term(a, b):
    if type(a) is not type(b):
        return False
    if isinstance(a, tuple):
        return len(a) == len(b) and all(_same_term(x, y) for x, y in zip(a, b))
    return a == b


class TestEncodeTerm:
    @given(a=terms, b=terms)
    @settings(max_examples=150, deadline=None)
    def test_injective(self, a, b):
        # Structural equality must be type-aware: Python's `0 == False`
        # would otherwise mask the (intended) bool/int distinction.
        if _same_term(a, b):
            assert encode_term(a) == encode_term(b)
        else:
            assert encode_term(a) != encode_term(b)

    def test_bool_is_not_int(self):
        assert encode_term(True) != encode_term(1)
        assert encode_term(False) != encode_term(0)

    def test_str_is_not_bytes(self):
        assert encode_term("ab") != encode_term(b"ab")

    def test_nested_tuples_differ_from_flat(self):
        assert encode_term((1, (2, 3))) != encode_term((1, 2, 3))
        assert encode_term(((1,), 2)) != encode_term((1, (2,)))

    def test_unencodable_raises(self):
        with pytest.raises(TypeError):
            encode_term([1, 2])  # lists are not canonical terms
        with pytest.raises(TypeError):
            encode_term(object())


class TestOracle:
    def test_domain_separation(self):
        assert oracle_digest("a", 1) != oracle_digest("b", 1)

    def test_deterministic(self):
        assert oracle_digest("d", ("x", 2)) == oracle_digest("d", ("x", 2))

    @given(bits=st.integers(min_value=1, max_value=1024), term=terms)
    @settings(max_examples=60, deadline=None)
    def test_hash_to_int_in_range(self, bits, term):
        value = hash_to_int("t", term, bits)
        assert 0 <= value < (1 << bits)

    def test_hash_to_int_rejects_nonpositive_bits(self):
        with pytest.raises(ValueError):
            hash_to_int("t", 1, 0)

    @given(
        low=st.integers(min_value=-1000, max_value=1000),
        span=st.integers(min_value=0, max_value=10 ** 9),
        term=terms,
    )
    @settings(max_examples=60, deadline=None)
    def test_hash_to_range_bounds(self, low, span, term):
        value = hash_to_range("t", term, low, low + span)
        assert low <= value <= low + span

    def test_hash_to_range_empty_rejected(self):
        with pytest.raises(ValueError):
            hash_to_range("t", 1, 5, 4)

    def test_hash_to_range_roughly_uniform(self):
        counts = [0, 0, 0, 0]
        trials = 4000
        for i in range(trials):
            counts[hash_to_range("u", i, 0, 3)] += 1
        for c in counts:
            assert abs(c - trials / 4) < trials / 10

    def test_huge_range_works(self):
        value = hash_to_range("big", 7, 1, 2 ** 128)
        assert 1 <= value <= 2 ** 128
