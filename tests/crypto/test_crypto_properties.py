"""Hypothesis property tests across the cryptographic backends."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.ideal import IdealSignatureScheme, IdealThresholdScheme
from repro.crypto.rsa import RsaSignatureScheme
from repro.crypto.threshold_rsa import generate_threshold_rsa

# Small nested message terms (the protocols sign tuples of these shapes).
messages = st.recursive(
    st.one_of(
        st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
        st.text(max_size=10),
        st.booleans(),
        st.none(),
    ),
    lambda children: st.lists(children, max_size=3).map(tuple),
    max_leaves=6,
)

_PLAIN = IdealSignatureScheme(4, random.Random(1))
_THRESHOLD = IdealThresholdScheme(5, 3, random.Random(2))
_RSA = RsaSignatureScheme.setup(2, 128, random.Random(3))
_TRSA = generate_threshold_rsa(4, 2, 128, random.Random(4))


class TestIdealProperties:
    @given(message=messages, signer=st.integers(0, 3))
    @settings(max_examples=60, deadline=None)
    def test_plain_roundtrip_any_term(self, message, signer):
        sig = _PLAIN.sign(signer, message)
        assert _PLAIN.verify(signer, sig, message)

    @given(message=messages, other=messages)
    @settings(max_examples=60, deadline=None)
    def test_plain_signature_bound_to_message(self, message, other):
        if message == other and type(message) is type(other):
            return
        sig = _PLAIN.sign(0, message)
        # (bool/int edge handled inside encode_term; distinct terms differ)
        try:
            crossed = _PLAIN.verify(0, sig, other)
        except Exception as error:  # pragma: no cover - must never happen
            pytest.fail(f"verify raised {error!r}")
        if crossed:
            # only possible when the canonical encodings coincide,
            # i.e. the terms are structurally identical
            from repro.crypto.random_oracle import encode_term

            assert encode_term(message) == encode_term(other)

    @given(message=messages, subset=st.sets(st.integers(0, 4), min_size=3))
    @settings(max_examples=40, deadline=None)
    def test_threshold_any_quorum_combines_to_same_signature(
        self, message, subset
    ):
        shares = [(i, _THRESHOLD.sign_share(i, message)) for i in subset]
        sig = _THRESHOLD.combine(shares, message)
        assert _THRESHOLD.verify(sig, message)
        reference = _THRESHOLD.combine(
            [(i, _THRESHOLD.sign_share(i, message)) for i in (0, 1, 2)], message
        )
        assert sig == reference  # uniqueness


class TestRsaProperties:
    @given(message=messages)
    @settings(max_examples=30, deadline=None)
    def test_fdh_roundtrip_any_term(self, message):
        sig = _RSA.sign(0, message)
        assert _RSA.verify(0, sig, message)
        assert not _RSA.verify(1, sig, message)

    @given(message=messages, tamper=st.integers(min_value=1, max_value=2 ** 32))
    @settings(max_examples=30, deadline=None)
    def test_tampered_values_rejected(self, message, tamper):
        sig = _RSA.sign(0, message)
        forged = type(sig)(signer=0, value=sig.value ^ tamper)
        if forged.value != sig.value:
            assert not _RSA.verify(0, forged, message)


class TestThresholdRsaProperties:
    @given(message=messages)
    @settings(max_examples=15, deadline=None)
    def test_shoup_roundtrip_any_term(self, message):
        shares = [(i, _TRSA.sign_share(i, message)) for i in (0, 2)]
        sig = _TRSA.combine(shares, message)
        assert _TRSA.verify(sig, message)

    @given(
        message=messages,
        field=st.sampled_from(["value", "challenge", "response"]),
        tamper=st.integers(min_value=1, max_value=2 ** 20),
    )
    @settings(max_examples=30, deadline=None)
    def test_nizk_rejects_any_single_field_tampering(self, message, field, tamper):
        share = _TRSA.sign_share(1, message)
        attributes = {
            "signer": share.signer,
            "value": share.value,
            "challenge": share.challenge,
            "response": share.response,
        }
        attributes[field] = attributes[field] ^ tamper
        forged = type(share)(**attributes)
        if getattr(forged, field) != getattr(share, field):
            assert not _TRSA.verify_share(1, forged, message)
