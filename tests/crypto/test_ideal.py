"""Tests for the idealized signature backends."""

import random

import pytest

from repro.crypto.ideal import IdealSignatureScheme, IdealThresholdScheme
from repro.crypto.interfaces import CryptoError


@pytest.fixture
def plain():
    return IdealSignatureScheme(4, random.Random(1))


@pytest.fixture
def threshold():
    return IdealThresholdScheme(5, 3, random.Random(2))


class TestPlain:
    def test_sign_verify_roundtrip(self, plain):
        sig = plain.sign(2, ("msg", 1))
        assert plain.verify(2, sig, ("msg", 1))

    def test_wrong_message_rejected(self, plain):
        sig = plain.sign(2, "a")
        assert not plain.verify(2, sig, "b")

    def test_wrong_signer_rejected(self, plain):
        sig = plain.sign(2, "a")
        assert not plain.verify(1, sig, "a")

    def test_garbage_rejected_without_raising(self, plain):
        assert not plain.verify(0, "not a signature", "a")
        assert not plain.verify(0, None, "a")
        assert not plain.verify(99, plain.sign(0, "a"), "a")
        assert not plain.verify("zero", plain.sign(0, "a"), "a")

    def test_unencodable_message_rejected(self, plain):
        sig = plain.sign(0, "a")
        assert not plain.verify(0, sig, [1, 2])  # lists are not terms

    def test_invalid_signer_raises_on_sign(self, plain):
        with pytest.raises(CryptoError):
            plain.sign(7, "a")

    def test_two_schemes_do_not_cross_verify(self):
        a = IdealSignatureScheme(3, random.Random(1))
        b = IdealSignatureScheme(3, random.Random(99))
        assert not b.verify(0, a.sign(0, "m"), "m")


class TestThreshold:
    def test_share_roundtrip(self, threshold):
        share = threshold.sign_share(1, "m")
        assert threshold.verify_share(1, share, "m")
        assert not threshold.verify_share(2, share, "m")
        assert not threshold.verify_share(1, share, "other")

    def test_combine_and_verify(self, threshold):
        shares = [(i, threshold.sign_share(i, "m")) for i in range(3)]
        sig = threshold.combine(shares, "m")
        assert threshold.verify(sig, "m")
        assert not threshold.verify(sig, "other")

    def test_combine_requires_threshold_distinct(self, threshold):
        shares = [(i, threshold.sign_share(i, "m")) for i in range(2)]
        with pytest.raises(CryptoError):
            threshold.combine(shares, "m")
        duplicated = [(0, threshold.sign_share(0, "m"))] * 3
        with pytest.raises(CryptoError):
            threshold.combine(duplicated, "m")

    def test_combine_rejects_invalid_share(self, threshold):
        shares = [(i, threshold.sign_share(i, "m")) for i in range(2)]
        shares.append((2, "forged"))
        with pytest.raises(CryptoError):
            threshold.combine(shares, "m")

    def test_uniqueness(self, threshold):
        """Any qualifying share subset combines to the *same* signature."""
        sig_a = threshold.combine(
            [(i, threshold.sign_share(i, "m")) for i in (0, 1, 2)], "m"
        )
        sig_b = threshold.combine(
            [(i, threshold.sign_share(i, "m")) for i in (2, 3, 4)], "m"
        )
        assert sig_a == sig_b
        assert threshold.signature_bytes(sig_a) == threshold.signature_bytes(sig_b)

    def test_try_combine_filters_garbage(self, threshold):
        indexed = [(i, threshold.sign_share(i, "m")) for i in range(3)]
        indexed += [(3, "junk"), ("x", None), (99, threshold.sign_share(0, "m"))]
        sig = threshold.try_combine(indexed, "m")
        assert sig is not None and threshold.verify(sig, "m")

    def test_try_combine_insufficient_returns_none(self, threshold):
        indexed = [(i, threshold.sign_share(i, "m")) for i in range(2)]
        assert threshold.try_combine(indexed, "m") is None

    def test_signature_bytes_requires_signature(self, threshold):
        with pytest.raises(CryptoError):
            threshold.signature_bytes("nope")

    def test_bad_parameters_rejected(self):
        with pytest.raises(CryptoError):
            IdealThresholdScheme(3, 0, random.Random(1))
        with pytest.raises(CryptoError):
            IdealThresholdScheme(3, 4, random.Random(1))

    def test_forgery_via_api_impossible(self, threshold):
        """t shares (below threshold) give the adversary nothing combinable,
        and hand-rolled signature objects do not verify."""
        from repro.crypto.ideal import _IdealShare, _IdealSignature

        fake_share = _IdealShare(signer=4, tag=b"\x00" * 32)
        assert not threshold.verify_share(4, fake_share, "m")
        fake_sig = _IdealSignature(tag=b"\x00" * 32)
        assert not threshold.verify(fake_sig, "m")
