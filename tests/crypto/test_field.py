"""Unit and property tests for prime-field arithmetic."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.field import (
    FieldElement,
    PrimeField,
    lagrange_coefficients_at_zero,
    lagrange_interpolate_at,
)
from repro.crypto.field import FieldError

PRIME = 2 ** 61 - 1  # Mersenne prime: cheap, large
SMALL_PRIME = 97

field_elements = st.integers(min_value=0, max_value=PRIME - 1)


class TestFieldElement:
    def test_construction_reduces_modulo(self):
        f = PrimeField(SMALL_PRIME)
        assert int(f(SMALL_PRIME + 5)) == 5
        assert int(f(-1)) == SMALL_PRIME - 1

    def test_add_sub_roundtrip(self):
        f = PrimeField(SMALL_PRIME)
        a, b = f(30), f(80)
        assert int(a + b) == (30 + 80) % SMALL_PRIME
        assert (a + b) - b == a

    def test_mul_div_roundtrip(self):
        f = PrimeField(SMALL_PRIME)
        a, b = f(30), f(80)
        assert (a * b) / b == a

    def test_negation(self):
        f = PrimeField(SMALL_PRIME)
        assert int(-f(1)) == SMALL_PRIME - 1
        assert int(-f(0)) == 0

    def test_pow_matches_python_pow(self):
        f = PrimeField(SMALL_PRIME)
        assert int(f(3) ** 20) == pow(3, 20, SMALL_PRIME)

    def test_zero_inverse_raises(self):
        f = PrimeField(SMALL_PRIME)
        with pytest.raises(FieldError):
            f(0).inverse()

    def test_mixed_field_operations_raise(self):
        a = PrimeField(SMALL_PRIME)(3)
        b = PrimeField(101)(3)
        with pytest.raises(FieldError):
            a + b
        with pytest.raises(FieldError):
            a * b

    def test_bool_and_int_conversions(self):
        f = PrimeField(SMALL_PRIME)
        assert not f(0)
        assert f(1)
        assert int(f(42)) == 42

    def test_elements_hashable_and_equal(self):
        f = PrimeField(SMALL_PRIME)
        assert f(5) == f(5 + SMALL_PRIME)
        assert len({f(5), f(5), f(6)}) == 2


class TestPrimeField:
    def test_rejects_tiny_modulus(self):
        with pytest.raises(FieldError):
            PrimeField(1)

    def test_zero_one(self):
        f = PrimeField(SMALL_PRIME)
        assert int(f.zero()) == 0
        assert int(f.one()) == 1

    def test_random_element_in_range(self):
        f = PrimeField(SMALL_PRIME)
        rng = random.Random(1)
        for _ in range(50):
            assert 0 <= int(f.random_element(rng)) < SMALL_PRIME

    def test_equality_and_hash(self):
        assert PrimeField(SMALL_PRIME) == PrimeField(SMALL_PRIME)
        assert PrimeField(SMALL_PRIME) != PrimeField(101)
        assert hash(PrimeField(SMALL_PRIME)) == hash(PrimeField(SMALL_PRIME))


class TestLagrange:
    @given(
        coefficients=st.lists(field_elements, min_size=1, max_size=6),
        x=field_elements,
    )
    @settings(max_examples=60, deadline=None)
    def test_interpolation_recovers_polynomial(self, coefficients, x):
        """Interpolating deg-(k-1) polynomial through k points is exact."""

        def evaluate(at):
            acc = 0
            for c in reversed(coefficients):
                acc = (acc * at + c) % PRIME
            return acc

        points = [(i, evaluate(i)) for i in range(1, len(coefficients) + 1)]
        assert lagrange_interpolate_at(points, x, PRIME) == evaluate(x)

    @given(coefficients=st.lists(field_elements, min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_coefficients_at_zero_match_interpolation(self, coefficients):
        def evaluate(at):
            acc = 0
            for c in reversed(coefficients):
                acc = (acc * at + c) % PRIME
            return acc

        xs = list(range(1, len(coefficients) + 1))
        lams = lagrange_coefficients_at_zero(xs, PRIME)
        combined = sum(l * evaluate(x) for l, x in zip(lams, xs)) % PRIME
        assert combined == evaluate(0) == coefficients[0]

    def test_duplicate_points_rejected(self):
        with pytest.raises(FieldError):
            lagrange_interpolate_at([(1, 2), (1, 3)], 0, SMALL_PRIME)
        with pytest.raises(FieldError):
            lagrange_coefficients_at_zero([1, 1 + SMALL_PRIME], SMALL_PRIME)
