"""Streaming trace sinks: file format, bounded memory, engine plumbing.

Three suites:

* ``JsonlTraceSink`` writes the canonical schema-versioned JSONL shape
  (header → records in delivery order → footer), closes idempotently,
  and refuses writes after close;
* bounded memory is *pinned*: the streaming sink holds no event list,
  and asking a streaming ``Tracer`` for its in-memory transcript raises
  ``AttributeError`` instead of silently accumulating;
* a traced 1000-trial plan streams one file per trial through
  ``ParallelRunner(trace_dir=...)``, and serial vs pooled runs produce
  byte-identical trace files (observability inherits the determinism
  contract).
"""

import json
import os

import pytest

from repro.engine import ParallelRunner, TrialPlan, register_protocol, run_traced_trial
from repro.network.trace import MemoryTraceSink, TraceEvent, Tracer
from repro.obs import (
    TRACE_SCHEMA,
    FanoutSink,
    JsonlTraceSink,
    load_trace,
    trace_filename,
)


def _echo_program(ctx, value):
    yield ctx.broadcast({"v": value})
    return value


register_protocol(
    "_test_obs_echo", lambda: (lambda ctx, v: _echo_program(ctx, v))
)


def _event(round_index=1, sender=0, recipient=1, summary="{v=1}",
           honest=True, signatures=0):
    return TraceEvent(
        round_index=round_index, sender=sender, recipient=recipient,
        summary=summary, sender_honest=honest, signatures=signatures,
    )


class TestJsonlFormat:
    def test_header_records_footer_in_order(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JsonlTraceSink(path, meta={"protocol": "echo", "seed": 7})
        sink.record_event(_event(signatures=2))
        sink.record_corruption(1, 3)
        sink.record_event(_event(round_index=2, honest=False))
        sink.close()

        lines = [json.loads(l) for l in open(path, encoding="utf-8")]
        assert [r["t"] for r in lines] == ["trace", "msg", "corr", "msg", "end"]
        assert lines[0]["schema"] == TRACE_SCHEMA
        assert lines[0]["meta"] == {"protocol": "echo", "seed": 7}
        assert lines[1] == {
            "t": "msg", "r": 1, "s": 0, "d": 1, "h": 1, "g": 2, "p": "{v=1}",
        }
        assert lines[2] == {"t": "corr", "r": 1, "pid": 3}
        assert lines[3]["h"] == 0
        assert lines[4] == {"t": "end", "events": 2, "corruptions": 1}

    def test_records_are_canonical_compact_json(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with JsonlTraceSink(path) as sink:
            sink.record_event(_event())
        raw = open(path, encoding="utf-8").read().splitlines()
        for line in raw:
            # sorted keys, no whitespace: one byte sequence per record
            assert line == json.dumps(
                json.loads(line), sort_keys=True, ensure_ascii=False,
                separators=(",", ":"),
            )

    def test_close_is_idempotent_and_context_managed(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JsonlTraceSink(path)
        sink.close()
        sink.close()  # no double footer
        lines = open(path, encoding="utf-8").read().splitlines()
        assert sum('"end"' in l for l in lines) == 1

    def test_write_after_close_raises(self, tmp_path):
        sink = JsonlTraceSink(str(tmp_path / "t.jsonl"))
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.record_event(_event())

    def test_trace_filename_is_sortable(self):
        assert trace_filename(0) == "trial-00000.trace.jsonl"
        assert trace_filename(123) == "trial-00123.trace.jsonl"
        assert sorted([trace_filename(10), trace_filename(2)]) == [
            trace_filename(2), trace_filename(10),
        ]


class TestFanout:
    def test_fanout_tees_to_all_sinks(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        memory = MemoryTraceSink()
        jsonl = JsonlTraceSink(path)
        tracer = Tracer(FanoutSink([memory, jsonl]))
        tracer.record_message(1, 0, 1, {"v": 1}, True)
        tracer.record_message(1, 0, 2, {"v": 1}, True)
        tracer.record_corruptions(1, {3})
        tracer.close()

        assert len(memory.events) == 2 and memory.corruptions == [(1, 3)]
        assert jsonl.events_written == 2 and jsonl.corruptions_written == 1
        # The streamed file replays to the same transcript the memory
        # sink holds.
        assert load_trace(path).tracer.render() == memory.render()


class TestBoundedMemory:
    """The whole point of streaming: nothing accumulates per event."""

    def test_streaming_sink_holds_no_event_list(self, tmp_path):
        sink = JsonlTraceSink(str(tmp_path / "t.jsonl"))
        for index in range(500):
            sink.record_event(_event(round_index=index))
        assert not hasattr(sink, "events")
        assert not hasattr(sink, "corruptions")
        sink.close()

    def test_streaming_tracer_refuses_transcript_accessors(self, tmp_path):
        tracer = Tracer(JsonlTraceSink(str(tmp_path / "t.jsonl")))
        tracer.record_message(1, 0, 1, {"v": 1}, True)
        with pytest.raises(AttributeError):
            tracer.events
        with pytest.raises(AttributeError):
            tracer.corruptions
        with pytest.raises(AttributeError):
            tracer.rounds
        with pytest.raises(AttributeError):
            tracer.render()
        tracer.close()


def _echo_plan(trials, seed=21):
    return TrialPlan.monte_carlo(
        name="obs-echo",
        protocol="_test_obs_echo",
        inputs=(1, 2, 3, 4),
        max_faulty=1,
        trials=trials,
        seed=seed,
    )


class TestEngineStreaming:
    def test_thousand_trial_plan_streams_one_file_per_trial(self, tmp_path):
        trace_dir = str(tmp_path / "run")
        plan = _echo_plan(1000)
        result = ParallelRunner(workers=1, trace_dir=trace_dir).run(plan)
        assert result.trace_dir == trace_dir
        files = sorted(os.listdir(trace_dir))
        assert len(files) == 1000
        assert files[0] == trace_filename(0)
        assert files[-1] == trace_filename(999)
        # Spot-check: each file is complete (footer present) and carries
        # the trial's identity in its header meta.
        for index in (0, 499, 999):
            loaded = load_trace(os.path.join(trace_dir, trace_filename(index)))
            assert loaded.meta["index"] == index
            assert loaded.meta["protocol"] == "_test_obs_echo"
            assert loaded.events == 16  # 4 senders x 4 recipients, 1 round
        # Untraced results are unchanged by tracing.
        plain = ParallelRunner(workers=1).run(plan)
        assert plain.results == result.results

    def test_serial_and_pooled_trace_files_are_byte_identical(self, tmp_path):
        plan = _echo_plan(40, seed=5)
        dir_serial = str(tmp_path / "serial")
        dir_pooled = str(tmp_path / "pooled")
        serial = ParallelRunner(workers=1, trace_dir=dir_serial).run(plan)
        pooled = ParallelRunner(
            workers=2, chunk_size=7, trace_dir=dir_pooled
        ).run(plan)
        assert serial.results == pooled.results
        assert sorted(os.listdir(dir_serial)) == sorted(os.listdir(dir_pooled))
        for name in sorted(os.listdir(dir_serial)):
            with open(os.path.join(dir_serial, name), "rb") as handle:
                serial_bytes = handle.read()
            with open(os.path.join(dir_pooled, name), "rb") as handle:
                pooled_bytes = handle.read()
            assert serial_bytes == pooled_bytes, name

    def test_run_traced_trial_closes_sink_on_failure(self, tmp_path):
        import dataclasses

        spec = _echo_plan(1).trials[0]
        bad = dataclasses.replace(spec, protocol="_no_such_protocol")
        with pytest.raises(KeyError):
            run_traced_trial(bad, str(tmp_path), 0)
        # The sink was closed AND the half-written file was removed: a
        # failed trial must not leave an orphaned, footer-less JSONL
        # behind for `repro trace` to choke on.
        assert not os.path.exists(os.path.join(str(tmp_path), trace_filename(0)))
        assert os.listdir(str(tmp_path)) == []

    @pytest.mark.parametrize("workers", [1, 2])
    def test_mid_chunk_failure_leaves_no_orphan_trace_files(
        self, tmp_path, workers
    ):
        import dataclasses

        # Trial 2 of 6 dies mid-plan: trials that completed before the
        # failure keep their (footer-terminated) traces, and the failed
        # trial leaves nothing behind — every surviving file replays.
        plan = _echo_plan(6)
        trials = list(plan.trials)
        trials[2] = dataclasses.replace(trials[2], protocol="_no_such_protocol")
        broken = dataclasses.replace(plan, trials=tuple(trials))
        trace_dir = str(tmp_path / "run")
        runner = ParallelRunner(
            workers=workers, chunk_size=3, trace_dir=trace_dir
        )
        with pytest.raises(KeyError):
            runner.run(broken)
        survivors = sorted(os.listdir(trace_dir))
        assert trace_filename(2) not in survivors
        for name in survivors:
            loaded = load_trace(os.path.join(trace_dir, name))
            assert loaded.events == 16  # complete: header, body, footer
