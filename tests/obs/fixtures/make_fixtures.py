#!/usr/bin/env python
"""Regenerate the committed report fixtures.

Run from the repo root::

    PYTHONPATH=src python tests/obs/fixtures/make_fixtures.py

``metrics.json`` comes from a real (deterministic) engine run;
``telemetry.jsonl`` and ``BENCH_sample.json`` are hand-shaped but
schema-valid.  ``report.md`` is the golden rendering of all three —
regenerate it only when the report format intentionally changes, and
review the diff.
"""

import json
import os

from repro.engine import ParallelRunner, TrialPlan
from repro.obs import (
    build_report,
    load_metrics_artifact,
    summarize_telemetry,
    write_metrics_artifact,
)

HERE = os.path.dirname(os.path.abspath(__file__))


def main():
    plan = TrialPlan.concat(
        "fixture-plan",
        [
            TrialPlan.monte_carlo(
                name="one_third",
                protocol="ba_one_third",
                inputs=(0, 0, 1, 1),
                max_faulty=1,
                trials=6,
                params={"kappa": 2},
                adversary="straddle13",
                adversary_params={"victims": (3,)},
                seed=41,
            ),
            TrialPlan.monte_carlo(
                name="one_half",
                protocol="ba_one_half",
                inputs=(0, 0, 1, 1, 1),
                max_faulty=2,
                trials=6,
                params={"kappa": 2},
                adversary="straddle12",
                adversary_params={"victims": (3, 4)},
                seed=42,
            ),
        ],
    )
    result = ParallelRunner(workers=1, metrics=True).run(plan)
    metrics_path = os.path.join(HERE, "metrics.json")
    write_metrics_artifact(metrics_path, result.metrics_payload())

    telemetry_path = os.path.join(HERE, "telemetry.jsonl")
    records = [
        {"t": "telemetry", "schema": "repro-telemetry/1",
         "meta": {"plan": "fixture-plan"}},
        {"t": "run_start", "at": 0.0, "label": "fixture-plan", "mode": "pool",
         "workers": 2, "trials": 12},
        {"t": "chunk_dispatch", "at": 0.001, "chunk": 0, "trials": 6},
        {"t": "chunk_dispatch", "at": 0.002, "chunk": 1, "trials": 6},
        {"t": "chunk_complete", "at": 0.41, "chunk": 0, "seconds": 0.4,
         "payload_bytes": 512},
        {"t": "chunk_complete", "at": 0.52, "chunk": 1, "seconds": 0.5,
         "payload_bytes": 498},
        {"t": "probe_cache", "at": 0.53, "hits": 3, "misses": 1},
        {"t": "vector_batch", "at": 0.54,
         "fallback_reasons": {"metrics collection requested": 12}},
        {"t": "run_complete", "at": 0.6, "label": "fixture-plan"},
    ]
    with open(telemetry_path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
        handle.write(json.dumps({"t": "end", "records": len(records) - 1}) + "\n")

    bench_path = os.path.join(HERE, "BENCH_sample.json")
    bench = {
        "schema": "repro-bench/1",
        "plan": {"name": "fixture-plan", "trials": 12},
        "workers": 2,
        "serial_seconds": 1.2,
        "parallel_seconds": 0.7,
        "speedup_parallel_vs_serial": 1.714,
        "vector_seconds": 0.2,
        "speedup_vector_vs_object": 6.0,
        "rates": [
            {"protocol": "ba_one_third", "kappa": 2, "bound": 0.25,
             "measured": 0.1667},
            {"protocol": "ba_one_half", "kappa": 2, "bound": 0.25,
             "measured": 0.1667},
        ],
        "a_future_key_this_reader_ignores": {"x": 1},
    }
    with open(bench_path, "w", encoding="utf-8") as handle:
        json.dump(bench, handle, indent=2, sort_keys=True)
        handle.write("\n")

    markdown = build_report(
        metrics=load_metrics_artifact(metrics_path),
        telemetry=summarize_telemetry(telemetry_path),
        benches=[(bench_path, bench)],
    )
    with open(os.path.join(HERE, "report.md"), "w", encoding="utf-8") as handle:
        handle.write(markdown)
    print("fixtures written to", HERE)


if __name__ == "__main__":
    main()
