"""Replay fidelity: streamed traces are the in-memory transcript, exactly.

The tentpole property: for **every** registered protocol × adversary
pair (the same sweep matrix as the transport losslessness tests), one
execution teed to a memory sink and a JSONL sink renders byte-identically
through both paths — stream → :func:`load_trace` → ``render()`` equals
``MemoryTraceSink.render()`` with no exceptions.

Plus the strictness contract: malformed JSON, missing/wrong headers,
wrong schema versions, truncated files, lying footers and unknown record
types are all rejected with :class:`ObsFormatError`, never misparsed.
"""

import json

import pytest

from repro.engine import adversary_names, protocol_names, run_trial
from repro.engine.plan import TrialSpec
from repro.network.trace import MemoryTraceSink, Tracer
from repro.obs import (
    TRACE_SCHEMA,
    FanoutSink,
    JsonlTraceSink,
    ObsFormatError,
    filter_trace,
    load_trace,
    trace_metrics,
)

from ..conftest import PROTOCOL_SHAPES


def _adversary_params(adversary, max_faulty, num_parties):
    victims = tuple(range(num_parties - max_faulty, num_parties))
    if adversary == "grade_split":
        return {"victims": victims, "target": 0, "boost_value": 0}
    return {"victims": victims}


def _spec(protocol, adversary, seed=3):
    inputs, max_faulty, params = PROTOCOL_SHAPES[protocol]
    return TrialSpec(
        protocol=protocol,
        inputs=inputs,
        max_faulty=max_faulty,
        params=params,
        adversary=adversary,
        adversary_params=(
            _adversary_params(adversary, max_faulty, len(inputs))
            if adversary
            else ()
        ),
        seed=seed,
        session=f"replay-{protocol}-{adversary}",
        max_rounds=64,
    )


class TestRoundTripProperty:
    def test_every_pair_replays_byte_identically(self, tmp_path):
        """One traced execution per compatible protocol × adversary pair;
        the streamed file must replay to the exact in-memory timeline."""
        survived = 0
        for protocol in PROTOCOL_SHAPES:
            for adversary in [None] + adversary_names():
                spec = _spec(protocol, adversary)
                path = str(tmp_path / f"{protocol}-{adversary}.jsonl")
                memory = MemoryTraceSink()
                jsonl = JsonlTraceSink(path)
                tracer = Tracer(FanoutSink([memory, jsonl]))
                try:
                    run_trial(spec, tracer=tracer)
                except Exception:
                    tracer.close()
                    continue  # incompatible combo — nothing to compare
                tracer.close()
                loaded = load_trace(path)
                assert loaded.tracer.render() == memory.render(), (
                    protocol, adversary,
                )
                assert loaded.events == len(memory.events)
                assert loaded.corruptions == len(memory.corruptions)
                assert loaded.tracer.rounds == memory.rounds
                survived += 1
        # Every shaped protocol must at least run adversary-free.
        assert survived >= len(PROTOCOL_SHAPES)

    def test_stats_cross_check_against_run_metrics(self, tmp_path):
        """Replayed per-round tallies equal the simulator's RunMetrics."""
        spec = _spec("ba_one_third", "straddle13")
        path = str(tmp_path / "stats.jsonl")
        tracer = Tracer(JsonlTraceSink(path))
        result = run_trial(spec, tracer=tracer)
        tracer.close()
        replayed = trace_metrics(load_trace(path).tracer)
        live = result.metrics
        assert replayed.total_messages == live.total_messages
        assert replayed.total_signatures == live.total_signatures
        for round_index, stats in live.per_round.items():
            assert replayed.per_round[round_index] == stats


def _write_lines(tmp_path, name, lines):
    path = str(tmp_path / name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    return path


def _header(schema=TRACE_SCHEMA):
    return json.dumps({"t": "trace", "schema": schema})


_MSG = json.dumps(
    {"t": "msg", "r": 1, "s": 0, "d": 1, "h": 1, "g": 0, "p": "{v=1}"}
)


class TestStrictRejection:
    def test_empty_file(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        open(path, "w").close()
        with pytest.raises(ObsFormatError, match="empty"):
            load_trace(path)

    def test_malformed_json(self, tmp_path):
        path = _write_lines(tmp_path, "bad.jsonl", ['{"t": "trace", broken'])
        with pytest.raises(ObsFormatError, match="not valid JSON"):
            load_trace(path)

    def test_non_object_record(self, tmp_path):
        path = _write_lines(tmp_path, "arr.jsonl", ["[1, 2, 3]"])
        with pytest.raises(ObsFormatError, match="'t' field"):
            load_trace(path)

    def test_missing_header(self, tmp_path):
        path = _write_lines(tmp_path, "nohdr.jsonl", [_MSG])
        with pytest.raises(ObsFormatError, match="header"):
            load_trace(path)

    def test_wrong_schema_version(self, tmp_path):
        path = _write_lines(
            tmp_path, "v9.jsonl",
            [_header("repro-trace/9"), json.dumps(
                {"t": "end", "events": 0, "corruptions": 0})],
        )
        with pytest.raises(ObsFormatError, match="schema"):
            load_trace(path)

    def test_truncated_no_footer(self, tmp_path):
        path = _write_lines(tmp_path, "trunc.jsonl", [_header(), _MSG])
        with pytest.raises(ObsFormatError, match="truncated"):
            load_trace(path)

    def test_truncation_of_real_trace_detected(self, tmp_path):
        """Chopping any tail off a valid streamed file must be caught."""
        full = str(tmp_path / "full.jsonl")
        with JsonlTraceSink(full) as sink:
            tracer = Tracer(sink)
            for i in range(5):
                tracer.record_message(1, 0, i, {"v": i}, True)
        lines = open(full, encoding="utf-8").read().splitlines()
        for keep in range(1, len(lines)):
            path = _write_lines(tmp_path, f"cut{keep}.jsonl", lines[:keep])
            with pytest.raises(ObsFormatError):
                load_trace(path)

    def test_footer_count_mismatch(self, tmp_path):
        path = _write_lines(
            tmp_path, "lie.jsonl",
            [_header(), _MSG, json.dumps(
                {"t": "end", "events": 7, "corruptions": 0})],
        )
        with pytest.raises(ObsFormatError, match="disagree"):
            load_trace(path)

    def test_record_after_footer(self, tmp_path):
        path = _write_lines(
            tmp_path, "tail.jsonl",
            [_header(), json.dumps(
                {"t": "end", "events": 0, "corruptions": 0}), _MSG],
        )
        with pytest.raises(ObsFormatError, match="after the end footer"):
            load_trace(path)

    def test_unknown_record_type(self, tmp_path):
        path = _write_lines(
            tmp_path, "unk.jsonl", [_header(), json.dumps({"t": "mystery"})]
        )
        with pytest.raises(ObsFormatError, match="unknown record type"):
            load_trace(path)

    def test_msg_missing_field(self, tmp_path):
        path = _write_lines(
            tmp_path, "short.jsonl",
            [_header(), json.dumps({"t": "msg", "r": 1, "s": 0})],
        )
        with pytest.raises(ObsFormatError, match="msg record missing"):
            load_trace(path)

    def test_telemetry_file_is_not_a_trace(self, tmp_path):
        """Cross-format confusion: feeding telemetry to the trace reader
        fails on the header type, not deep inside the records."""
        path = _write_lines(
            tmp_path, "tele.jsonl",
            [json.dumps({"t": "telemetry", "schema": "repro-telemetry/1"})],
        )
        with pytest.raises(ObsFormatError, match="header"):
            load_trace(path)


def _toy_tracer():
    tracer = Tracer(MemoryTraceSink())
    tracer.record_message(1, 0, 1, {"v": 1}, True)
    tracer.record_message(1, 3, 0, {"v": 9}, False)
    tracer.record_message(2, 1, 2, {"v": 2}, True)
    tracer.record_message(2, 0, 3, {"v": 2}, True)
    tracer.record_corruptions(1, {3})
    return tracer


class TestFilters:
    def test_round_filter(self):
        kept = filter_trace(_toy_tracer(), rounds=[2])
        assert [e.round_index for e in kept.events] == [2, 2]
        assert kept.corruptions == []  # corruption was in round 1

    def test_party_filter_matches_sender_or_recipient(self):
        kept = filter_trace(_toy_tracer(), party=0)
        assert len(kept.events) == 3  # sent 2, received 1
        assert all(0 in (e.sender, e.recipient) for e in kept.events)
        assert kept.corruptions == []  # party 0 was never corrupted

    def test_corrupt_only(self):
        kept = filter_trace(_toy_tracer(), corrupt_only=True)
        assert [e.sender for e in kept.events] == [3]
        assert kept.corruptions == [(1, 3)]

    def test_filters_compose(self):
        kept = filter_trace(_toy_tracer(), rounds=[1], party=3)
        assert len(kept.events) == 1 and kept.events[0].sender == 3
        assert kept.corruptions == [(1, 3)]


class TestFaultRecords:
    """Fault spans stream, replay, filter, and stay footer-audited."""

    def _faulted_trace(self, tmp_path):
        from repro.core.ba import ba_one_third_program
        from repro.network.faults import FaultPlan
        from repro.network.simulator import SyncSimulator

        from ..conftest import ideal_suite

        path = str(tmp_path / "faulty.jsonl")
        memory = MemoryTraceSink()
        tracer = Tracer(FanoutSink([memory, JsonlTraceSink(path)]))
        simulator = SyncSimulator(
            num_parties=5,
            max_faulty=1,
            crypto=ideal_suite(5, 1),
            seed=9,
            session="fault-trace",
            tracer=tracer,
            faults=FaultPlan(loss=0.25, delay=0.25, max_delay=2),
        )
        simulator.run(
            lambda ctx, value: ba_one_third_program(ctx, value, kappa=3),
            (1, 0, 1, 0, 1),
        )
        tracer.close()
        return path, memory

    def test_fault_records_replay_byte_identically(self, tmp_path):
        path, memory = self._faulted_trace(tmp_path)
        loaded = load_trace(path)
        assert loaded.faults == len(memory.faults) > 0
        assert loaded.tracer.render() == memory.render()

    def test_clean_trace_footer_has_no_faults_key(self, tmp_path):
        # Byte-compat with pre-fault-layer traces: a run without faults
        # writes exactly the old footer shape.
        path = str(tmp_path / "clean.jsonl")
        with JsonlTraceSink(path) as sink:
            Tracer(sink).record_message(1, 0, 1, {"v": 1}, True)
        footer = open(path, encoding="utf-8").read().splitlines()[-1]
        assert "faults" not in json.loads(footer)

    def test_fault_footer_count_is_audited(self, tmp_path):
        path, _ = self._faulted_trace(tmp_path)
        lines = open(path, encoding="utf-8").read().splitlines()
        footer = json.loads(lines[-1])
        footer["faults"] += 1
        lied = _write_lines(
            tmp_path, "lied.jsonl", lines[:-1] + [json.dumps(footer)]
        )
        with pytest.raises(ObsFormatError, match="disagree"):
            load_trace(lied)

    def test_fault_record_missing_field_rejected(self, tmp_path):
        path = _write_lines(
            tmp_path, "shortfault.jsonl",
            [_header(), json.dumps({"t": "fault", "r": 1, "s": 0})],
        )
        with pytest.raises(ObsFormatError):
            load_trace(path)

    def test_filters_apply_to_faults(self, tmp_path):
        path, memory = self._faulted_trace(tmp_path)
        loaded = load_trace(path)
        some_round = memory.faults[0].round_index
        kept = filter_trace(loaded.tracer, rounds=[some_round])
        assert kept.faults
        assert all(f.round_index == some_round for f in kept.faults)
        kept = filter_trace(loaded.tracer, party=2)
        assert all(2 in (f.sender, f.recipient) for f in kept.faults)
