"""Tests for the deterministic ``repro-metrics/1`` registry.

Three layers of guarantees:

* algebra — ``merge`` is commutative and associative over finalized
  registries, and the canonical ``pack``/``unpack`` wire form is
  lossless and commutes with merging (hypothesis properties, mirroring
  the ``RunMetrics`` tally round-trip suite);
* collection — a registry attached to the simulator's delivery seam
  recomputes exactly from a replayed trace (``delivery_view`` equals
  ``metrics_from_trace``) across protocol × adversary × fault configs;
* artifact — the ``repro-metrics/1`` JSON document validates, writes
  deterministically and survives a disk round trip.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import TrialPlan, run_trial
from repro.network.trace import Tracer
from repro.obs import (
    DELIVERY_METRIC_NAMES,
    HISTOGRAM_BUCKETS,
    MESSAGE_KINDS,
    METRIC_NAMES,
    METRICS_SCHEMA,
    Histogram,
    MetricsRegistry,
    ObsFormatError,
    build_metrics_payload,
    load_metrics_artifact,
    metrics_from_trace,
    validate_metrics_payload,
    write_metrics_artifact,
)

_COUNTER_NAMES = sorted(METRIC_NAMES - set(HISTOGRAM_BUCKETS))
_HIST_NAMES = sorted(HISTOGRAM_BUCKETS)


class TestVocabulary:
    def test_names_are_frozen_and_lowercase(self):
        assert isinstance(METRIC_NAMES, frozenset)
        assert all(name == name.lower() for name in METRIC_NAMES)

    def test_histograms_and_delivery_names_are_subsets(self):
        assert set(HISTOGRAM_BUCKETS) <= METRIC_NAMES
        assert DELIVERY_METRIC_NAMES <= METRIC_NAMES

    def test_buckets_strictly_increasing(self):
        for name, buckets in HISTOGRAM_BUCKETS.items():
            assert list(buckets) == sorted(set(buckets)), name


class TestRegistryValidation:
    def test_unknown_counter_rejected(self):
        with pytest.raises(ValueError, match="unknown counter"):
            MetricsRegistry().inc("mesages")

    def test_histogram_name_not_a_counter(self):
        with pytest.raises(ValueError, match="unknown counter"):
            MetricsRegistry().inc("rounds_to_decision")

    def test_unknown_histogram_rejected(self):
        with pytest.raises(ValueError, match="unknown histogram"):
            MetricsRegistry().observe("messages", 1)

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            MetricsRegistry().inc("messages", by=-1)

    def test_zero_increment_is_canonical_noop(self):
        registry = MetricsRegistry()
        registry.inc("messages", by=0)
        assert registry == MetricsRegistry()
        assert registry.pack() == MetricsRegistry().pack()


class TestHistogram:
    def test_percentiles_are_monotone_and_clamped(self):
        hist = Histogram(HISTOGRAM_BUCKETS["rounds_to_decision"])
        for value in (2, 2, 3, 3, 3, 5, 9, 40):
            hist.observe(value)
        p50, p90, p99 = (hist.percentile(q) for q in (0.5, 0.9, 0.99))
        assert p50 <= p90 <= p99 <= hist.maximum == 40
        assert hist.percentile(1e-9) >= hist.minimum == 2

    def test_overflow_bucket_resolves_to_maximum(self):
        hist = Histogram((1, 2, 4))
        hist.observe(1000)
        assert hist.percentile(0.99) == 1000

    def test_merge_requires_matching_buckets(self):
        with pytest.raises(ValueError, match="different buckets"):
            Histogram((1, 2)).merge(Histogram((1, 3)))


# Random registry shapes: counter bumps over the real vocabulary with a
# few label spellings, plus histogram observations over real buckets.
_counter_entry = st.tuples(
    st.sampled_from(_COUNTER_NAMES),
    st.sampled_from(["", "agree", "crash", "0001/int", "0002/signature"]),
    st.integers(min_value=1, max_value=1 << 20),
)
_hist_entry = st.tuples(
    st.sampled_from(_HIST_NAMES), st.integers(min_value=0, max_value=500)
)
_registry_shape = st.tuples(
    st.lists(_counter_entry, max_size=16), st.lists(_hist_entry, max_size=24)
)


def _build(shape) -> MetricsRegistry:
    counters, observations = shape
    registry = MetricsRegistry()
    for name, label, by in counters:
        registry.inc(name, label, by=by)
    for name, value in observations:
        registry.observe(name, value)
    return registry


class TestMergeAlgebra:
    @settings(deadline=None)
    @given(_registry_shape, _registry_shape)
    def test_merge_is_commutative(self, a, b):
        assert MetricsRegistry.merged([_build(a), _build(b)]) == (
            MetricsRegistry.merged([_build(b), _build(a)])
        )

    @settings(deadline=None)
    @given(_registry_shape, _registry_shape, _registry_shape)
    def test_merge_is_associative(self, a, b, c):
        left = _build(a)
        left.merge(_build(b))
        left.merge(_build(c))
        bc = _build(b)
        bc.merge(_build(c))
        right = _build(a)
        right.merge(bc)
        assert left == right

    def test_merge_with_empty_is_identity(self):
        registry = _build(([("messages", "", 7)], [("slot_occupancy", 3)]))
        merged = registry.copy()
        merged.merge(MetricsRegistry())
        assert merged == registry


class TestWireForm:
    @settings(deadline=None)
    @given(_registry_shape)
    def test_pack_unpack_is_identity(self, shape):
        registry = _build(shape)
        assert MetricsRegistry.unpack(registry.pack()) == registry

    @settings(deadline=None)
    @given(_registry_shape)
    def test_pack_is_canonical(self, shape):
        registry = _build(shape)
        blob = registry.pack()
        assert MetricsRegistry.unpack(blob).pack() == blob

    @settings(deadline=None)
    @given(_registry_shape, _registry_shape)
    def test_merge_commutes_with_the_wire(self, a, b):
        direct = _build(a)
        direct.merge(_build(b))
        via_wire = MetricsRegistry.merged(
            MetricsRegistry.unpack(_build(shape).pack()) for shape in (a, b)
        )
        assert via_wire == direct

    def test_truncated_blob_raises(self):
        blob = _build(([("messages", "", 3)], [])).pack()
        with pytest.raises(ObsFormatError, match="truncated"):
            MetricsRegistry.unpack(blob[:-1])

    def test_trailing_bytes_raise(self):
        blob = _build(([("messages", "", 3)], [])).pack()
        with pytest.raises(ObsFormatError, match="trailing"):
            MetricsRegistry.unpack(blob + b"\x00")

    def test_unknown_version_raises(self):
        with pytest.raises(ObsFormatError, match="version"):
            MetricsRegistry.unpack(b"\x63")

    def test_json_payload_roundtrip(self):
        registry = _build(
            ([("messages", "", 5), ("fault_hits", "crash", 2)],
             [("rounds_to_decision", 3)])
        )
        assert MetricsRegistry.from_payload(registry.as_payload()) == registry


# One small plan per protocol × adversary × fault configuration the
# collection grid covers; every entry must satisfy live == replayed.
_GRID = [
    ("ba_one_third", (0, 0, 1, 1), 1, {"kappa": 2},
     "straddle13", {"victims": (3,)}, None, None),
    ("ba_one_half", (0, 0, 1, 1, 1), 2, {"kappa": 2},
     "straddle12", {"victims": (3, 4)}, None, None),
    ("fm_probabilistic", (0, 0, 1, 1), 1, {}, None, None, None, None),
    ("threshold_coin", (None, None, None, None), 1, {"index": 0},
     "withhold_coin", {"victims": (3,), "preferred": 1}, None, None),
    ("ba_one_third", (0, 0, 1, 1), 1, {"kappa": 2},
     "crash", {"victims": (3,)}, "lossy", {"rate": 0.3}),
]


def _grid_specs(entry, trials=3):
    protocol, inputs, t, params, adversary, adv_params, faults, fparams = entry
    plan = TrialPlan.monte_carlo(
        name=f"metrics-{protocol}",
        protocol=protocol,
        inputs=inputs,
        max_faulty=t,
        trials=trials,
        params=params,
        adversary=adversary,
        adversary_params=adv_params,
        seed=29,
        faults=faults,
        fault_params=fparams,
        vectorizable=faults is None,
    )
    return plan.trials


class TestLiveEqualsReplayed:
    @pytest.mark.parametrize(
        "entry", _GRID, ids=[f"{e[0]}-{e[4]}-{e[6]}" for e in _GRID]
    )
    def test_delivery_view_matches_trace_recomputation(self, entry):
        for spec in _grid_specs(entry):
            tracer = Tracer()
            collector = MetricsRegistry()
            result = run_trial(spec, tracer=tracer, collector=collector)
            collector.finalize_trial(result)
            replayed = metrics_from_trace(tracer.events, tracer.faults)
            assert collector.delivery_view() == replayed

    def test_collector_never_perturbs_execution(self):
        spec = _grid_specs(_GRID[0], trials=1)[0]
        bare = run_trial(spec)
        collector = MetricsRegistry()
        observed = run_trial(spec, collector=collector)
        assert observed == bare
        assert collector.counter_total("messages") > 0

    def test_round_message_labels_use_known_kinds(self):
        collector = MetricsRegistry()
        result = run_trial(_grid_specs(_GRID[0], trials=1)[0], collector=collector)
        collector.finalize_trial(result)
        labels = collector.labels("round_messages")
        assert labels
        for label in labels:
            round_key, kind = label.split("/", 1)
            assert round_key.isdigit()
            assert kind in MESSAGE_KINDS

    def test_finalize_trial_rolls_up_outcomes(self):
        collector = MetricsRegistry()
        result = run_trial(_grid_specs(_GRID[0], trials=1)[0], collector=collector)
        collector.finalize_trial(result)
        assert collector.counter_total("trials") == 1
        rounds = collector.histograms["rounds_to_decision"]
        assert rounds.count == len(
            [pid for pid in result.finish_rounds if pid not in result.corrupted]
        )
        assert collector.counter_total("agreements") == 1

    def test_faulted_run_attributes_fault_hits(self):
        faulted = _GRID[-1]
        total = MetricsRegistry()
        for spec in _grid_specs(faulted, trials=4):
            collector = MetricsRegistry()
            result = run_trial(spec, collector=collector)
            collector.finalize_trial(result)
            total.merge(collector)
        assert total.counter_total("fault_hits") > 0
        assert all(kind for kind in total.labels("fault_hits"))


class TestArtifact:
    def _payload(self):
        registry = _build(
            ([("messages", "", 9), ("trials", "", 2)],
             [("rounds_to_decision", 2), ("rounds_to_decision", 4)])
        )
        return build_metrics_payload(
            {"plan": "unit", "trials": 2},
            {"cfg": ({"protocol": "ba_one_third", "num_parties": 4}, registry)},
        )

    def test_payload_validates_clean(self):
        assert validate_metrics_payload(self._payload()) == []

    def test_totals_equal_config_merge(self):
        payload = self._payload()
        merged = MetricsRegistry.merged(
            MetricsRegistry.from_payload(entry["metrics"])
            for entry in payload["configs"].values()
        )
        assert MetricsRegistry.from_payload(payload["totals"]) == merged

    def test_wrong_schema_flagged(self):
        payload = self._payload()
        payload["schema"] = "repro-metrics/99"
        assert any("schema" in v for v in validate_metrics_payload(payload))

    def test_unknown_counter_name_flagged(self):
        payload = self._payload()
        payload["totals"]["counters"]["mesages"] = {"": 1}
        assert any("mesages" in v for v in validate_metrics_payload(payload))

    def test_non_object_payload_flagged(self):
        assert validate_metrics_payload([]) != []

    def test_write_load_roundtrip_and_deterministic_bytes(self, tmp_path):
        payload = self._payload()
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        write_metrics_artifact(str(first), payload)
        write_metrics_artifact(str(second), json.loads(first.read_text()))
        assert first.read_bytes() == second.read_bytes()
        loaded = load_metrics_artifact(str(first))
        assert loaded["schema"] == METRICS_SCHEMA
        assert MetricsRegistry.from_payload(
            loaded["totals"]
        ) == MetricsRegistry.from_payload(payload["totals"])

    def test_write_refuses_invalid_payload(self, tmp_path):
        with pytest.raises(ObsFormatError):
            write_metrics_artifact(str(tmp_path / "bad.json"), {"schema": "x"})

    def test_load_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ObsFormatError, match="JSON"):
            load_metrics_artifact(str(path))
