"""The fused run report renders deterministically and gates schemas.

The golden fixture under ``fixtures/`` pins the exact markdown for a
committed (metrics, telemetry, bench) triple — regenerate via
``PYTHONPATH=src python tests/obs/fixtures/make_fixtures.py`` only when
the report format intentionally changes, and review the diff.  Profile
sections are exercised against freshly generated ``cProfile`` dumps
instead (their timings are inherently machine-dependent, so they stay
out of the golden).
"""

import cProfile
import json
import os

import pytest

from repro.obs import (
    ObsFormatError,
    build_report,
    check_report,
    load_metrics_artifact,
    load_profile_summary,
    load_report_inputs,
    render_html,
    summarize_telemetry,
)

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")


def _fixture_inputs():
    metrics = load_metrics_artifact(os.path.join(FIXTURES, "metrics.json"))
    telemetry = summarize_telemetry(os.path.join(FIXTURES, "telemetry.jsonl"))
    bench_path = os.path.join(FIXTURES, "BENCH_sample.json")
    with open(bench_path, encoding="utf-8") as handle:
        bench = json.load(handle)
    return metrics, telemetry, [(bench_path, bench)]


class TestGoldenRendering:
    def test_matches_committed_golden_byte_for_byte(self):
        metrics, telemetry, benches = _fixture_inputs()
        rendered = build_report(
            metrics=metrics, telemetry=telemetry, benches=benches
        )
        with open(os.path.join(FIXTURES, "report.md"), encoding="utf-8") as handle:
            golden = handle.read()
        assert rendered == golden

    def test_rendering_is_deterministic(self):
        metrics, telemetry, benches = _fixture_inputs()
        first = build_report(metrics=metrics, telemetry=telemetry, benches=benches)
        second = build_report(metrics=metrics, telemetry=telemetry, benches=benches)
        assert first == second

    def test_sections_render_only_for_provided_inputs(self):
        metrics, _, _ = _fixture_inputs()
        report = build_report(metrics=metrics)
        assert "## Protocol metrics" in report
        assert "## Engine telemetry" not in report
        assert "## Benchmark timings" not in report

    def test_empty_report_still_renders(self):
        report = build_report()
        assert report.startswith("# repro run report")
        assert "Inputs: none." in report


class TestProfileSection:
    def _profile_dir(self, tmp_path):
        path = str(tmp_path / "prof")
        os.makedirs(path)
        profiler = cProfile.Profile()
        profiler.enable()
        sum(i * i for i in range(200_000))
        profiler.disable()
        profiler.dump_stats(os.path.join(path, "chunk-00000.pstats"))
        return path

    def test_summary_shape_and_order(self, tmp_path):
        summary = load_profile_summary(self._profile_dir(tmp_path), top=5)
        assert summary["files"] == 1
        assert summary["total_seconds"] >= 0
        own = [f["own_seconds"] for f in summary["functions"]]
        assert own == sorted(own, reverse=True)
        assert len(summary["functions"]) <= 5

    def test_empty_directory_returns_none(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert load_profile_summary(str(empty)) is None

    def test_attribution_rendered_against_busy_seconds(self, tmp_path):
        profile = load_profile_summary(self._profile_dir(tmp_path))
        telemetry = {
            "schema": "repro-telemetry/1", "records": 1, "runs": [],
            "pooled_runs": 0, "consistent": True, "fallback_reasons": {},
            "unknown_types": {}, "profiles": [], "chunks": 1,
            "busy_seconds": max(profile["total_seconds"], 1e-6),
            "payload_bytes": 0, "trials": 1, "setup_seconds": 0.0,
            "adaptive_rounds": 0, "probe_cache_hits": 0,
            "probe_cache_misses": 0, "profile_seconds": 0.0,
        }
        report = build_report(telemetry=telemetry, profile=profile)
        assert "## Profile" in report
        assert "of telemetry busy time attributed" in report


class TestCheckReport:
    def test_clean_fixtures_pass(self):
        metrics, telemetry, benches = _fixture_inputs()
        assert check_report(
            metrics=metrics, telemetry=telemetry, benches=benches
        ) == []

    def test_bad_metrics_schema_is_a_violation(self):
        metrics, _, _ = _fixture_inputs()
        metrics = dict(metrics)
        metrics["schema"] = "repro-metrics/99"
        violations = check_report(metrics=metrics)
        assert any("schema" in v for v in violations)

    def test_inconsistent_telemetry_is_a_violation(self):
        _, telemetry, _ = _fixture_inputs()
        telemetry = dict(telemetry)
        telemetry["consistent"] = False
        assert any(
            "consistent" in v for v in check_report(telemetry=telemetry)
        )

    def test_foreign_bench_schema_is_a_violation(self):
        violations = check_report(
            benches=[("BENCH_x.json", {"schema": "repro-telemetry/1"})]
        )
        assert any("repro-bench" in v for v in violations)

    def test_bench_without_schema_field_passes(self):
        assert check_report(benches=[("old.json", {"serial_seconds": 1.0})]) == []


class TestHtml:
    def test_wraps_and_escapes(self):
        markdown = "# title\n\n<script>alert(1)</script>\n"
        page = render_html(markdown)
        assert page.startswith("<!doctype html>")
        assert "<script>alert(1)</script>" not in page
        assert "&lt;script&gt;" in page

    def test_html_is_deterministic(self):
        metrics, telemetry, benches = _fixture_inputs()
        markdown = build_report(metrics=metrics, telemetry=telemetry, benches=benches)
        assert render_html(markdown) == render_html(markdown)


class TestLoadReportInputs:
    def test_telemetry_directory_resolves_to_jsonl(self):
        inputs = load_report_inputs(telemetry_path=FIXTURES)
        assert inputs["telemetry"]["records"] == 8

    def test_missing_profile_dir_raises(self, tmp_path):
        with pytest.raises(ObsFormatError, match="profile"):
            load_report_inputs(profile_dir=str(tmp_path / "nope"))

    def test_non_object_bench_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError, match="JSON object"):
            load_report_inputs(bench_paths=[str(path)])
