"""Engine telemetry: writer format, span consistency, runner plumbing.

The span-consistency invariant is the load-bearing part: chunk busy-time
is measured *inside* the worker (``_run_chunk_timed``), so summed busy
seconds can never exceed a pooled run's ``wall × workers`` capacity —
``summarize_telemetry`` flags any file where they do, and ``repro bench
--telemetry`` turns that flag into a nonzero exit.
"""

import json

import pytest

from repro.engine import AdaptiveRunner, ParallelRunner, TrialPlan
from repro.obs import (
    TELEMETRY_SCHEMA,
    ObsFormatError,
    TelemetryWriter,
    summarize_telemetry,
)


def _records(path):
    return [json.loads(l) for l in open(path, encoding="utf-8")]


class TestWriter:
    def test_header_records_footer(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with TelemetryWriter(path, meta={"run": "x"}) as tele:
            tele.emit("run_start", label="demo", mode="inline", workers=1)
            tele.emit("run_complete", label="demo")
        lines = _records(path)
        assert [r["t"] for r in lines] == [
            "telemetry", "run_start", "run_complete", "end",
        ]
        assert lines[0]["schema"] == TELEMETRY_SCHEMA
        assert lines[0]["meta"] == {"run": "x"}
        assert lines[-1]["records"] == 2

    def test_at_stamps_are_monotone(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with TelemetryWriter(path) as tele:
            for _ in range(20):
                tele.emit("tick")
        stamps = [r["at"] for r in _records(path)[1:-1]]
        assert stamps == sorted(stamps)
        assert all(at >= 0 for at in stamps)

    def test_emit_after_close_raises(self, tmp_path):
        tele = TelemetryWriter(str(tmp_path / "t.jsonl"))
        tele.close()
        tele.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            tele.emit("tick")


def _write_file(tmp_path, name, records, footer_count=None):
    path = str(tmp_path / name)
    body = [{"t": "telemetry", "schema": TELEMETRY_SCHEMA}, *records]
    count = len(records) if footer_count is None else footer_count
    body.append({"t": "end", "records": count})
    with open(path, "w", encoding="utf-8") as handle:
        for record in body:
            handle.write(json.dumps(record) + "\n")
    return path


class TestSummarize:
    def test_consistent_pooled_run(self, tmp_path):
        path = _write_file(tmp_path, "ok.jsonl", [
            {"t": "run_start", "at": 0.0, "label": "r", "mode": "pool",
             "workers": 2, "trials": 8},
            {"t": "chunk_dispatch", "at": 0.0, "chunk": 0, "trials": 4},
            {"t": "chunk_dispatch", "at": 0.0, "chunk": 1, "trials": 4},
            {"t": "chunk_complete", "at": 0.9, "chunk": 0, "seconds": 0.8,
             "span": 0.9, "payload_bytes": 100},
            {"t": "chunk_complete", "at": 1.0, "chunk": 1, "seconds": 0.9,
             "span": 1.0, "payload_bytes": 150},
            {"t": "run_complete", "at": 1.0, "label": "r"},
        ])
        summary = summarize_telemetry(path)
        assert summary["consistent"] is True
        assert summary["chunks"] == 2
        assert summary["busy_seconds"] == pytest.approx(1.7)
        assert summary["payload_bytes"] == 250
        assert summary["trials"] == 8
        assert summary["pooled_runs"] == 1
        (run,) = summary["runs"]
        assert run["wall_seconds"] == pytest.approx(1.0)
        assert run["utilization"] == pytest.approx(0.85)

    def test_busy_exceeding_pool_capacity_is_inconsistent(self, tmp_path):
        # 2 workers, 1s wall, but 3s of claimed in-worker busy time:
        # physically impossible, must be flagged.
        path = _write_file(tmp_path, "over.jsonl", [
            {"t": "run_start", "at": 0.0, "label": "r", "mode": "pool",
             "workers": 2},
            {"t": "chunk_complete", "at": 1.0, "chunk": 0, "seconds": 3.0},
            {"t": "run_complete", "at": 1.0, "label": "r"},
        ])
        assert summarize_telemetry(path)["consistent"] is False

    def test_run_start_without_complete_is_inconsistent(self, tmp_path):
        path = _write_file(tmp_path, "dangling.jsonl", [
            {"t": "run_start", "at": 0.0, "label": "r", "mode": "pool",
             "workers": 2},
        ])
        assert summarize_telemetry(path)["consistent"] is False

    def test_truncated_file_rejected(self, tmp_path):
        path = str(tmp_path / "trunc.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"t": "telemetry", "schema": TELEMETRY_SCHEMA}) + "\n")
            handle.write(json.dumps({"t": "run_start", "at": 0.0}) + "\n")
        with pytest.raises(ObsFormatError, match="truncated"):
            summarize_telemetry(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = str(tmp_path / "v9.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"t": "telemetry", "schema": "repro-telemetry/9"}) + "\n")
            handle.write(json.dumps({"t": "end", "records": 0}) + "\n")
        with pytest.raises(ObsFormatError, match="schema"):
            summarize_telemetry(path)

    def test_lying_footer_rejected(self, tmp_path):
        path = _write_file(tmp_path, "lie.jsonl", [
            {"t": "run_start", "at": 0.0},
        ], footer_count=5)
        with pytest.raises(ObsFormatError, match="disagrees"):
            summarize_telemetry(path)


def _plan(trials=12, seed=7):
    return TrialPlan.monte_carlo(
        name="tele",
        protocol="ba_one_third",
        inputs=(0, 0, 1, 1),
        max_faulty=1,
        trials=trials,
        params={"kappa": 2},
        adversary="straddle13",
        adversary_params={"victims": (3,)},
        seed=seed,
    )


class TestRunnerTelemetry:
    def test_pooled_run_emits_consistent_spans(self, tmp_path):
        path = str(tmp_path / "pool.jsonl")
        plan = _plan()
        with TelemetryWriter(path) as tele:
            observed = ParallelRunner(
                workers=2, chunk_size=3, telemetry=tele
            ).run(plan)
        plain = ParallelRunner(workers=2, chunk_size=3).run(plan)
        # Observability is off the results path: identical output.
        assert observed.results == plain.results

        summary = summarize_telemetry(path)
        assert summary["consistent"] is True
        assert summary["pooled_runs"] == 1
        assert summary["chunks"] == 4  # 12 trials / chunk_size 3
        assert summary["trials"] == 12
        assert summary["payload_bytes"] > 0
        kinds = [r["t"] for r in _records(path)]
        assert kinds[:2] == ["telemetry", "run_start"]
        # Ideal-backend suites are dealt in the workers, so no predeal
        # span is emitted (it only covers the threshold-RSA bottleneck).
        assert "predeal" not in kinds
        assert kinds.count("chunk_dispatch") == 4
        assert kinds.count("chunk_complete") == 4
        assert "run_complete" in kinds

    def test_inline_run_emits_start_and_complete(self, tmp_path):
        path = str(tmp_path / "inline.jsonl")
        with TelemetryWriter(path) as tele:
            ParallelRunner(workers=1, telemetry=tele).run(_plan(trials=4))
        summary = summarize_telemetry(path)
        assert summary["consistent"] is True
        kinds = [r["t"] for r in _records(path)]
        assert "run_start" in kinds and "run_complete" in kinds
        start = next(r for r in _records(path) if r["t"] == "run_start")
        assert start["mode"] == "inline"

    def test_adaptive_run_emits_allocation_audit_trail(self, tmp_path):
        path = str(tmp_path / "adaptive.jsonl")
        plan = _plan(trials=12)
        with TelemetryWriter(path) as tele:
            observed = AdaptiveRunner(
                workers=2, batch_size=4, early_stop=False, telemetry=tele
            ).run(plan, 0.5)
        plain = AdaptiveRunner(workers=2, batch_size=4, early_stop=False).run(
            plan, 0.5
        )
        assert observed.results == plain.results

        summary = summarize_telemetry(path)
        assert summary["consistent"] is True
        assert summary["adaptive_rounds"] >= 1
        records = _records(path)
        rounds = [r for r in records if r["t"] == "adaptive_round"]
        for record in rounds:
            for allocation in record["allocations"]:
                assert set(allocation) == {"config", "trials", "width"}
        complete = next(r for r in records if r["t"] == "adaptive_complete")
        assert complete["spent"] <= complete["budget"]
        assert complete["allocation_rounds"] == len(rounds)


class TestForwardCompatibility:
    """Unknown span types warn-and-skip; the rest of the digest survives.

    A ``repro-telemetry/1`` file written by a newer engine may carry
    span types this reader predates — losing the whole summary over one
    of them would make the format version-locked in practice.
    """

    def test_unknown_span_type_warns_and_skips(self, tmp_path):
        path = _write_file(tmp_path, "future.jsonl", [
            {"t": "run_start", "at": 0.0, "label": "r", "mode": "pool",
             "workers": 2, "trials": 4},
            {"t": "chunk_dispatch", "at": 0.0, "chunk": 0, "trials": 4},
            {"t": "quantum_leap", "at": 0.1, "entangled": True},
            {"t": "chunk_complete", "at": 0.5, "chunk": 0, "seconds": 0.4,
             "payload_bytes": 64},
            {"t": "quantum_leap", "at": 0.6},
            {"t": "run_complete", "at": 0.7, "label": "r"},
        ])
        with pytest.warns(UserWarning, match="quantum_leap"):
            summary = summarize_telemetry(path)
        # The known spans still digest in full.
        assert summary["chunks"] == 1
        assert summary["trials"] == 4
        assert summary["consistent"] is True
        assert summary["unknown_types"] == {"quantum_leap": 2}

    def test_known_types_do_not_warn(self, tmp_path, recwarn):
        path = _write_file(tmp_path, "known.jsonl", [
            {"t": "run_start", "at": 0.0, "label": "r", "mode": "inline",
             "workers": 1},
            {"t": "run_complete", "at": 0.1, "label": "r"},
        ])
        summary = summarize_telemetry(path)
        assert summary["unknown_types"] == {}
        assert not [w for w in recwarn.list if issubclass(w.category, UserWarning)]


class TestProfileSpans:
    def test_profile_spans_digest_into_totals(self, tmp_path):
        path = _write_file(tmp_path, "prof.jsonl", [
            {"t": "run_start", "at": 0.0, "label": "r", "mode": "pool",
             "workers": 1},
            {"t": "profile", "at": 0.5, "chunk": 0,
             "path": "prof/chunk-00000.pstats", "seconds": 0.4},
            {"t": "profile", "at": 0.9, "chunk": 1,
             "path": "prof/chunk-00001.pstats", "seconds": 0.3},
            {"t": "run_complete", "at": 1.0, "label": "r"},
        ])
        summary = summarize_telemetry(path)
        assert summary["profile_seconds"] == pytest.approx(0.7)
        assert summary["profiles"] == [
            "prof/chunk-00000.pstats", "prof/chunk-00001.pstats",
        ]
