"""Assorted edge-case coverage across modules."""

import pytest

from repro.adversary.base import Adversary, RoundDecision
from repro.adversary.strategies import EavesdropCoinAdversary, TwoFaceAdversary
from repro.core.ba import ba_one_third_program
from repro.network.errors import SimulationError
from repro.proxcensus.base import check_proxcensus_consistency
from repro.proxcensus.linear_half import prox_linear_half_program
from repro.proxcensus.one_third import prox_one_third_program
from repro.proxcensus.quadratic_half import prox_quadratic_half_program

from .conftest import run


class TestSimulatorEdges:
    def test_adaptive_corruption_of_unknown_party_rejected(self):
        class Confused(Adversary):
            def decide(self, view):
                return RoundDecision(corrupt={17: None})

        def echo(ctx, v):
            yield ctx.broadcast({"v": v})
            return v

        with pytest.raises(SimulationError):
            run(echo, [1, 2, 3], 1, adversary=Confused())

    def test_corrupting_a_finished_party_is_harmless(self):
        class LateStriker(Adversary):
            def decide(self, view):
                if view.round_index == 2:
                    return RoundDecision(corrupt={0: None})
                return RoundDecision()

        def quick_then_slow(ctx, v):
            yield ctx.broadcast({"v": v})
            if ctx.party_id != 0:
                yield ctx.broadcast({"v": v})
            return v

        res = run(quick_then_slow, [1, 2, 3], 1, adversary=LateStriker())
        assert res.outputs[1] == 2 and res.outputs[2] == 3
        assert 0 in res.corrupted

    def test_zero_faults_network(self):
        res = run(
            lambda c, b: ba_one_third_program(c, b, kappa=4),
            [1, 0, 1], 0, session="zf",
        )
        assert res.honest_agree()


class TestEavesdropAgainstOneThird:
    def test_opens_the_single_coin_in_its_round(self):
        kappa = 4
        adversary = EavesdropCoinAdversary([3], coin_low=1, coin_high=2 ** kappa)
        res = run(
            lambda c, b: ba_one_third_program(c, b, kappa),
            [0, 1, 0, 1], 1, adversary=adversary, session="ev13",
        )
        assert res.honest_agree()
        opened = {
            index: at for (session, index), at in adversary.opened.items()
        }
        assert ("ba13", kappa) in opened
        strike_round, value = opened[("ba13", kappa)]
        assert strike_round == kappa + 1  # the coin round itself
        assert 1 <= value <= 2 ** kappa


class TestMultivaluedDomainsProperty:
    """Definition 2 holds over arbitrary finite domains, not just bits."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    domain_inputs = st.lists(
        st.sampled_from(["α", "β", "γ", 42, ("nested", 1)]),
        min_size=4, max_size=7,
    )

    @given(inputs=domain_inputs, seed=st.integers(0, 2 ** 16))
    @settings(max_examples=25, deadline=None)
    def test_one_third_any_domain(self, inputs, seed):
        n = len(inputs)
        t = (n - 1) // 3
        res = run(
            lambda c, x: prox_one_third_program(c, x, rounds=2),
            inputs, t, seed=seed, session=f"md13-{seed}",
        )
        check_proxcensus_consistency(res.outputs.values(), 5)

    @given(inputs=domain_inputs, seed=st.integers(0, 2 ** 16))
    @settings(max_examples=25, deadline=None)
    def test_linear_half_any_domain(self, inputs, seed):
        n = len(inputs)
        t = (n - 1) // 2
        res = run(
            lambda c, x: prox_linear_half_program(c, x, rounds=3),
            inputs, t, seed=seed, session=f"mdlh-{seed}",
        )
        check_proxcensus_consistency(res.outputs.values(), 5)


class TestMultivaluedProxUnderAttack:
    @pytest.mark.parametrize("seed", range(3))
    def test_linear_half_ternary_domain(self, seed):
        factory = lambda c, x: prox_linear_half_program(c, x, rounds=3)
        adversary = TwoFaceAdversary(
            victims=[4], factory=factory, low_input="red", high_input="blue"
        )
        res = run(
            factory, ["red", "red", "blue", "green", "red"], 2,
            adversary=adversary, seed=seed, session=f"mp{seed}",
        )
        check_proxcensus_consistency(res.honest_outputs.values(), 5)

    def test_quadratic_ternary_domain(self):
        factory = lambda c, x: prox_quadratic_half_program(c, x, rounds=4)
        res = run(
            factory, ["a", "a", "a", "b", "c"], 2, session="mq",
        )
        check_proxcensus_consistency(res.outputs.values(), 5)
        # 'a' has n-t = 3 supporters: it must reach the top grade
        assert all(tuple(o) == ("a", 2) for o in res.outputs.values())
