"""Tests for slot geometry and invariant checkers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.proxcensus.base import (
    ProxOutput,
    ProxcensusViolation,
    check_proxcensus_consistency,
    check_proxcensus_validity,
    max_grade,
    slot_count_with_grades,
    slot_index,
    slot_label,
)


class TestMaxGrade:
    @pytest.mark.parametrize(
        "slots,grades", [(2, 0), (3, 1), (4, 1), (5, 2), (9, 4), (10, 4), (15, 7)]
    )
    def test_paper_formula(self, slots, grades):
        assert max_grade(slots) == grades

    def test_rejects_one_slot(self):
        with pytest.raises(ValueError):
            max_grade(1)

    @given(grades=st.integers(min_value=0, max_value=50), even=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_inverse(self, grades, even):
        if grades == 0 and not even:
            return  # a 1-slot "Proxcensus" does not exist (s >= 2)
        slots = slot_count_with_grades(grades, even)
        assert max_grade(slots) == grades
        assert (slots % 2 == 0) == even


class TestSlotGeometry:
    @given(slots=st.integers(min_value=2, max_value=40))
    @settings(max_examples=40, deadline=None)
    def test_index_label_roundtrip(self, slots):
        seen = set()
        for position in range(slots):
            value, grade = slot_label(position, slots)
            if value is None:
                assert slots % 2 == 1 and grade == 0
                assert slot_index(0, 0, slots) == position
                assert slot_index(1, 0, slots) == position
            else:
                assert slot_index(value, grade, slots) == position
            seen.add(position)
        assert seen == set(range(slots))

    def test_extremes(self):
        # Odd s: (0, G) leftmost, (1, G) rightmost, center shared.
        assert slot_index(0, 4, 9) == 0
        assert slot_index(1, 4, 9) == 8
        assert slot_index(0, 0, 9) == slot_index(1, 0, 9) == 4
        # Even s: grade-0 slots are distinct.
        assert slot_index(0, 0, 10) == 4
        assert slot_index(1, 0, 10) == 5

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            slot_index(0, 5, 9)
        with pytest.raises(ValueError):
            slot_index(2, 1, 9)
        with pytest.raises(ValueError):
            slot_label(9, 9)


class TestCheckers:
    def test_consistency_accepts_adjacent(self):
        check_proxcensus_consistency(
            [ProxOutput(1, 2), ProxOutput(1, 3), ProxOutput(1, 2)], slots=9
        )

    def test_consistency_rejects_grade_gap(self):
        with pytest.raises(ProxcensusViolation):
            check_proxcensus_consistency(
                [ProxOutput(1, 1), ProxOutput(1, 3)], slots=9
            )

    def test_consistency_rejects_value_split_at_high_grade(self):
        with pytest.raises(ProxcensusViolation):
            check_proxcensus_consistency(
                [ProxOutput(0, 1), ProxOutput(1, 1)], slots=9
            )

    def test_even_s_grade_zero_must_share_value_with_graded(self):
        # Even s: any grade > 0 forces all values equal (Definition 2).
        with pytest.raises(ProxcensusViolation):
            check_proxcensus_consistency(
                [ProxOutput(0, 1), ProxOutput(1, 0)], slots=10
            )
        # Odd s: the same configuration is legal (center is valueless).
        check_proxcensus_consistency(
            [ProxOutput(0, 1), ProxOutput(1, 0)], slots=9
        )

    def test_consistency_rejects_overflowing_grade(self):
        with pytest.raises(ProxcensusViolation):
            check_proxcensus_consistency([ProxOutput(0, 5)], slots=9)

    def test_validity(self):
        check_proxcensus_validity(
            [ProxOutput("v", 4), ProxOutput("v", 4)], slots=9, common_input="v"
        )
        with pytest.raises(ProxcensusViolation):
            check_proxcensus_validity(
                [ProxOutput("v", 3)], slots=9, common_input="v"
            )
        with pytest.raises(ProxcensusViolation):
            check_proxcensus_validity(
                [ProxOutput("w", 4)], slots=9, common_input="v"
            )

    def test_outputs_accepted_as_tuples(self):
        check_proxcensus_consistency([(1, 2), (1, 3)], slots=9)
