"""White-box tests of the output-determination logic.

These drive the protocol generators *by hand* with surgically crafted
inboxes — no simulator, no adversary class — to pin down the exact
decision boundaries of the paper's pseudocode:

* the expansion's tie-break ("in case of a tie, the upper slot is
  chosen"),
* the quorum thresholds n-t / n-2t at their edges, and
* the per-round deadlines of the linear t<n/2 Proxcensus (Table 1).
"""

import random

import pytest

from repro.crypto.keys import CryptoSuite
from repro.network.messages import Broadcast
from repro.network.party import Context
from repro.proxcensus.base import ProxOutput
from repro.proxcensus.linear_half import prox_linear_half_program
from repro.proxcensus.one_third import prox_expand_once_program

from ..conftest import ideal_suite


def make_context(n, t, party_id=0, session="wb"):
    return Context(
        party_id=party_id,
        num_parties=n,
        max_faulty=t,
        session=session,
        crypto=ideal_suite(n, t),
        rng=random.Random(7),
    )


def finish(generator, inbox):
    """Send the final inbox; return the StopIteration value."""
    try:
        generator.send(inbox)
    except StopIteration as stop:
        return stop.value
    raise AssertionError("generator did not finish")


def own_payload(outbox):
    assert isinstance(outbox, Broadcast)
    return outbox.payload


class TestExpansionDecisionBoundaries:
    """Prox_5 -> Prox_9 style single expansions; n = 4, t = 1 so the
    quorums are n-t = 3 and n-2t = 2."""

    def expand(self, my_pair, received_pairs, inner_slots=5):
        ctx = make_context(4, 1)
        generator = prox_expand_once_program(ctx, my_pair[0], my_pair[1], inner_slots)
        outbox = next(generator)
        inbox = {0: own_payload(outbox)}
        for sender, pair in enumerate(received_pairs, start=1):
            if pair is not None:
                inbox[sender] = {"prox13": pair}
        return finish(generator, inbox)

    def test_tie_breaks_to_the_upper_slot(self):
        """Band (1,2) with n-2t echoes on BOTH grades: the paper picks the
        upper slot — grade 2g+2-b = 3 (not 2)."""
        result = self.expand((1, 1), [(1, 1), (1, 2), (1, 2)])
        assert result == ProxOutput(1, 3)

    def test_lower_side_quorum_gives_lower_slot(self):
        """Band (1,2) with only the lower grade at n-2t: grade 2g+1-b = 2."""
        result = self.expand((1, 1), [(1, 1), (1, 2), None])
        assert result == ProxOutput(1, 2)

    def test_full_top_quorum_gives_max_grade(self):
        result = self.expand((1, 2), [(1, 2), (1, 2), None])
        assert result == ProxOutput(1, 4)  # 2G+1-b with G=2, b=1

    def test_one_vote_short_of_union_quorum_defaults(self):
        """|S(1,1) ∪ S(1,2)| = 2 < n-t: no slot condition fires."""
        result = self.expand((1, 1), [(1, 2), None, None])
        assert result == ProxOutput(0, 0)

    def test_grade_zero_pool_feeds_the_lowest_band(self):
        """Odd s special case: |S_0 ∪ S(z,1)| >= n-t with |S(z,1)| >= n-2t."""
        result = self.expand((1, 1), [(1, 1), (0, 0), None])
        assert result == ProxOutput(1, 1)

    def test_grade_zero_pool_value_is_irrelevant(self):
        """The grade-0 echoes count for any candidate (center is valueless
        for odd s) — even when their value field disagrees."""
        result = self.expand((1, 1), [(1, 1), ("junk", 0), None])
        assert result == ProxOutput(1, 1)

    def test_out_of_range_inner_grades_ignored(self):
        result = self.expand((1, 2), [(1, 99), (1, -1), (1, True)])
        # only our own echo counts: nothing reaches a quorum
        assert result == ProxOutput(0, 0)


class TestLinearHalfDeadlines:
    """Drive the 3-round Prox_5 of Lemma 3 by hand; n = 5, t = 2."""

    def drive(self, my_value, round1_shares, round2_bodies, round3_bodies):
        """round1_shares: list of (sender, value) to sign-and-deliver;
        round{2,3}_bodies: {sender: plh-body-dict} extra deliveries."""
        ctx = make_context(5, 2)
        scheme = ctx.crypto.quorum
        generator = prox_linear_half_program(ctx, my_value, rounds=3)

        outbox = next(generator)
        inbox = {0: own_payload(outbox)}
        for sender, value in round1_shares:
            message = ("plh", ctx.session, "sigma", value)
            inbox[sender] = {
                "plh": {"value": value, "share": scheme.sign_share(sender, message)}
            }
        outbox = generator.send(inbox)
        inbox = {0: own_payload(outbox)}
        for sender, body in round2_bodies.items():
            inbox[sender] = {"plh": body}
        outbox = generator.send(inbox)
        inbox = {0: own_payload(outbox)}
        for sender, body in round3_bodies.items():
            inbox[sender] = {"plh": body}
        return finish(generator, inbox), ctx, scheme

    def sigma(self, ctx, scheme, value):
        message = ("plh", ctx.session, "sigma", value)
        return scheme.combine(
            [(i, scheme.sign_share(i, message)) for i in range(3)], message
        )

    def omega_share(self, ctx, scheme, signer, value):
        return scheme.sign_share(signer, ("plh", ctx.session, "omega", value))

    def test_pre_agreement_reaches_grade_two(self):
        ctx = make_context(5, 2)
        scheme = ctx.crypto.quorum
        omega = lambda sender: {
            "sigmas": [], "omegas": [],
            "omega_share": (1, self.omega_share(ctx, scheme, sender, 1)),
        }
        result, _, _ = self.drive(
            1,
            [(1, 1), (2, 1), (3, 1), (4, 1)],
            {1: omega(1), 2: omega(2)},
            {},
        )
        assert result == ProxOutput(1, 2)

    def test_sigma_arriving_in_round_two_caps_grade_at_one(self):
        """Table 1 column (v,1): Σ by round 2 (not 1) + Ω by round 3."""
        ctx = make_context(5, 2)
        scheme = ctx.crypto.quorum
        sigma_1 = self.sigma(ctx, scheme, 1)
        omega_message = ("plh", ctx.session, "omega", 1)
        omega = scheme.combine(
            [(i, scheme.sign_share(i, omega_message)) for i in range(3)],
            omega_message,
        )
        result, _, _ = self.drive(
            0,                                  # our own vote is for 0!
            [],                                 # no quorum in round 1
            {1: {"sigmas": [(1, sigma_1)], "omegas": []}},
            {2: {"sigmas": [], "omegas": [(1, omega)]}},
        )
        # Σ_1@2, Ω_1@3, no Σ_0 ever (only our own share) -> (1, 1)
        assert result == ProxOutput(1, 1)

    def test_conflicting_sigma_by_round_two_kills_grade_one(self):
        """The 'no other value by round g+1' deadline."""
        ctx = make_context(5, 2)
        scheme = ctx.crypto.quorum
        sigma_1 = self.sigma(ctx, scheme, 1)
        sigma_0 = self.sigma(ctx, scheme, 0)
        result, _, _ = self.drive(
            0,
            [],
            {
                1: {"sigmas": [(1, sigma_1)], "omegas": []},
                2: {"sigmas": [(0, sigma_0)], "omegas": []},
            },
            {},
        )
        assert result == ProxOutput(0, 0)

    def test_omega_missing_means_grade_zero(self):
        """Σ alone never grades: the Ω proof is mandatory (Table 1)."""
        ctx = make_context(5, 2)
        scheme = ctx.crypto.quorum
        sigma_1 = self.sigma(ctx, scheme, 1)
        result, _, _ = self.drive(
            0, [], {1: {"sigmas": [(1, sigma_1)], "omegas": []}}, {},
        )
        assert result == ProxOutput(0, 0)
