"""Tests for s-slot proxcast (Appendix A) and its player-replaceable variant."""

import pytest

from repro.adversary.strategies import (
    CrashAdversary,
    MalformedAdversary,
    TwoFaceAdversary,
)
from repro.proxcensus.base import (
    check_proxcensus_consistency,
    max_grade,
)
from repro.proxcensus.proxcast import (
    proxcast_player_replaceable_program,
    proxcast_program,
    rounds_for_slots,
)

from ..conftest import run


def factory(slots, dealer=0):
    return lambda ctx, x: proxcast_program(ctx, x, slots=slots, dealer=dealer)


def pr_factory(slots, dealer=0):
    return lambda ctx, x: proxcast_player_replaceable_program(
        ctx, x, slots=slots, dealer=dealer
    )


class TestStatics:
    @pytest.mark.parametrize("slots,rounds", [(2, 1), (3, 2), (5, 4), (8, 7)])
    def test_round_cost(self, slots, rounds):
        assert rounds_for_slots(slots) == rounds

    def test_rejects_one_slot(self):
        with pytest.raises(ValueError):
            rounds_for_slots(1)

    def test_invalid_dealer_rejected(self):
        with pytest.raises(ValueError):
            run(factory(3, dealer=9), ["x"] * 4, max_faulty=1)

    def test_pr_variant_needs_honest_majority(self):
        with pytest.raises(ValueError):
            run(pr_factory(3), ["x", "y"], max_faulty=1)


class TestHonestDealer:
    @pytest.mark.parametrize("slots", [2, 3, 4, 5, 6, 9])
    def test_validity_max_grade(self, slots):
        res = run(factory(slots), ["blk"] * 4, max_faulty=3)
        grades = max_grade(slots)
        for output in res.outputs.values():
            assert output.value == "blk" and output.grade == grades
        assert res.metrics.rounds == rounds_for_slots(slots)

    def test_validity_with_byzantine_relayers(self):
        """t < n: even n-1 corrupted relayers cannot shake an honest dealer."""
        res = run(
            factory(5, dealer=0), ["blk"] * 4, max_faulty=3,
            adversary=MalformedAdversary(victims=[1, 2, 3]),
        )
        assert res.honest_outputs[0].value == "blk"
        assert res.honest_outputs[0].grade == max_grade(5)

    def test_pr_variant_validity(self):
        res = run(pr_factory(5), ["blk"] * 5, max_faulty=2)
        for output in res.outputs.values():
            assert output.value == "blk" and output.grade == max_grade(5)


class TestEquivocatingDealer:
    @pytest.mark.parametrize("slots", [3, 4, 5, 7])
    @pytest.mark.parametrize("seed", range(4))
    def test_consistency(self, slots, seed):
        adversary = TwoFaceAdversary(
            victims=[0], factory=factory(slots), low_input="a", high_input="b"
        )
        res = run(
            factory(slots), ["a"] * 5, max_faulty=1,
            adversary=adversary, seed=seed,
        )
        check_proxcensus_consistency(res.honest_outputs.values(), slots)

    def test_silent_dealer_gives_grade_zero(self):
        res = run(
            factory(5), ["x"] * 4, max_faulty=1,
            adversary=CrashAdversary(victims=[0], crash_round=1),
        )
        for output in res.honest_outputs.values():
            assert output.grade == 0

    def test_pr_variant_consistency_under_equivocation(self):
        adversary = TwoFaceAdversary(
            victims=[0], factory=pr_factory(5), low_input="a", high_input="b"
        )
        res = run(
            pr_factory(5), ["a"] * 5, max_faulty=2, adversary=adversary, seed=2
        )
        check_proxcensus_consistency(res.honest_outputs.values(), 5)

    def test_late_equivocation_caps_grade(self):
        """A dealer who reveals a second signature late can reduce grades,
        but never break adjacency."""
        slots = 7

        def delayed_equivocator(ctx, x):
            # A handmade dealer: signs 'a' for round 1, releases a signed
            # 'b' from round 3 onward by acting as a two-face with delay.
            return proxcast_program(ctx, x, slots=slots, dealer=0)

        adversary = TwoFaceAdversary(
            victims=[0], factory=delayed_equivocator,
            low_input="a", high_input="b", low_group=set(range(5)),
        )
        res = run(
            factory(slots), ["a"] * 5, max_faulty=1, adversary=adversary
        )
        check_proxcensus_consistency(res.honest_outputs.values(), slots)
