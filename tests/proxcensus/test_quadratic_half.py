"""Tests for the quadratic t < n/2 Proxcensus (Appendix B, Lemma 7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.strategies import (
    CrashAdversary,
    MalformedAdversary,
    TwoFaceAdversary,
)
from repro.proxcensus.base import (
    check_proxcensus_consistency,
    check_proxcensus_validity,
)
from repro.proxcensus.quadratic_half import (
    condition_table,
    prox_quadratic_half_program,
    slots_after_rounds,
    top_grade,
)

from ..conftest import run


def factory(rounds):
    return lambda ctx, x: prox_quadratic_half_program(ctx, x, rounds=rounds)


class TestConditionTable:
    @pytest.mark.parametrize(
        "rounds,slots", [(3, 3), (4, 5), (5, 9), (6, 15), (7, 23)]
    )
    def test_slot_growth_formula(self, rounds, slots):
        assert slots_after_rounds(rounds) == slots

    def test_top_grade_consistent_with_slots(self):
        for rounds in range(3, 10):
            assert 2 * top_grade(rounds) + 1 == slots_after_rounds(rounds)

    def test_rejects_fewer_than_three_rounds(self):
        with pytest.raises(ValueError):
            slots_after_rounds(2)

    def test_matches_paper_table2(self):
        """The r = 6 table printed in the paper (Table 2), value-0 side."""
        table = condition_table(6)
        assert table[7] == {1: 1, 2: 2, 3: 3, 4: 4, 5: 5, 6: 6}
        assert table[6] == {2: 1, 3: 2, 4: 3, 5: 4, 6: 5}
        assert table[5] == {2: 1, 3: 2, 4: 3, 5: 4, 6: 4}
        assert table[4] == {2: 1, 3: 2, 4: 3, 5: 3, 6: 4}
        assert table[3] == {2: 1, 3: 2, 4: 3, 5: 3, 6: 3}
        assert table[2] == {2: 1, 3: 2, 4: 2, 5: 3, 6: 3}
        assert table[1] == {2: 1, 3: 2, 4: 2, 5: 2, 6: 3}

    @given(rounds=st.integers(min_value=3, max_value=9))
    @settings(max_examples=7, deadline=None)
    def test_structural_invariants(self, rounds):
        table = condition_table(rounds)
        grades = top_grade(rounds)
        assert set(table) == set(range(1, grades + 1))
        # Every grade >= 1 requires Ω_3 somewhere (the paper's disjointness
        # argument hinges on this) — except tiny instances without Ω_3.
        if rounds >= 4:
            for grade, per_round in table.items():
                assert any(required >= 3 for required in per_round.values()), grade
        # Conditions weaken monotonically with the grade: pointwise, a
        # higher grade requires an at-least-as-late omega at each round.
        for grade in range(1, grades):
            for round_index in range(2, rounds + 1):
                assert (
                    table[grade][round_index] <= table[grade + 1][round_index]
                )
        # Adjacent grades' conditions are distinct (they define distinct
        # slots).
        for grade in range(1, grades):
            assert table[grade] != table[grade + 1]


class TestHonestExecutions:
    @pytest.mark.parametrize("rounds", [3, 4, 5, 6])
    @pytest.mark.parametrize("bit", [0, 1])
    def test_validity_under_pre_agreement(self, rounds, bit):
        res = run(factory(rounds), [bit] * 5, max_faulty=2)
        check_proxcensus_validity(
            res.outputs.values(), slots_after_rounds(rounds), bit
        )

    def test_rounds_consumed(self):
        res = run(factory(5), [1, 0, 1, 0, 1], max_faulty=2)
        assert res.metrics.rounds == 5

    @given(
        inputs=st.lists(st.integers(0, 1), min_size=3, max_size=6),
        rounds=st.integers(min_value=3, max_value=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_consistency_any_inputs_no_adversary(self, inputs, rounds):
        n = len(inputs)
        t = (n - 1) // 2
        res = run(factory(rounds), inputs, max_faulty=t)
        check_proxcensus_consistency(
            res.outputs.values(), slots_after_rounds(rounds)
        )


class TestAdversarialExecutions:
    @pytest.mark.parametrize("rounds", [3, 4, 5, 6])
    @pytest.mark.parametrize("seed", range(4))
    def test_consistency_under_two_face(self, rounds, seed):
        adversary = TwoFaceAdversary(victims=[3, 4], factory=factory(rounds))
        res = run(
            factory(rounds), [0, 0, 1, 1, 0], max_faulty=2,
            adversary=adversary, seed=seed,
        )
        check_proxcensus_consistency(
            res.honest_outputs.values(), slots_after_rounds(rounds)
        )

    def test_validity_not_broken_by_two_face(self):
        adversary = TwoFaceAdversary(victims=[3, 4], factory=factory(4))
        res = run(factory(4), [1, 1, 1, 0, 0], max_faulty=2, adversary=adversary)
        check_proxcensus_validity(res.honest_outputs.values(), 5, 1)

    def test_crash_adversary(self):
        res = run(
            factory(4), [1, 1, 1, 1, 1], max_faulty=2,
            adversary=CrashAdversary(victims=[3, 4], crash_round=3),
        )
        check_proxcensus_validity(res.honest_outputs.values(), 5, 1)

    def test_malformed_adversary(self):
        res = run(
            factory(4), [0, 1, 0, 1, 1], max_faulty=2,
            adversary=MalformedAdversary(victims=[4]),
        )
        check_proxcensus_consistency(res.honest_outputs.values(), 5)
