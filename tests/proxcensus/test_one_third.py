"""Tests for the t < n/3 Proxcensus (Corollary 1): Prox_{2^r + 1}."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.strategies import (
    CrashAdversary,
    LastRoundCorruptionAdversary,
    MalformedAdversary,
    TwoFaceAdversary,
)
from repro.proxcensus.base import (
    check_proxcensus_consistency,
    check_proxcensus_validity,
    max_grade,
)
from repro.proxcensus.one_third import prox_one_third_program, slots_after_rounds

from ..conftest import run


def factory(rounds):
    return lambda ctx, x: prox_one_third_program(ctx, x, rounds=rounds)


class TestStatics:
    @pytest.mark.parametrize("rounds,slots", [(0, 2), (1, 3), (2, 5), (3, 9), (6, 65)])
    def test_slot_growth_formula(self, rounds, slots):
        assert slots_after_rounds(rounds) == slots

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError):
            slots_after_rounds(-1)

    def test_resilience_guard(self):
        with pytest.raises(ValueError):
            run(factory(1), [0, 1, 0], max_faulty=1)  # n=3, t=1 violates 3t<n


class TestHonestExecutions:
    @pytest.mark.parametrize("rounds", [0, 1, 2, 3, 5])
    @pytest.mark.parametrize("bit", [0, 1])
    def test_validity_under_pre_agreement(self, rounds, bit):
        res = run(factory(rounds), [bit] * 4, max_faulty=1)
        check_proxcensus_validity(
            res.outputs.values(), slots_after_rounds(rounds), bit
        )

    def test_rounds_consumed(self):
        res = run(factory(4), [1, 0, 1, 0], max_faulty=1)
        assert res.metrics.rounds == 4

    def test_no_signatures_used(self):
        """Corollary 1 is *perfectly secure*: zero signatures on the wire."""
        res = run(factory(3), [1, 0, 1, 0], max_faulty=1)
        assert res.metrics.total_signatures == 0

    @given(
        inputs=st.lists(st.integers(0, 1), min_size=4, max_size=7),
        rounds=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_consistency_any_inputs_no_adversary(self, inputs, rounds):
        n = len(inputs)
        t = (n - 1) // 3
        res = run(factory(rounds), inputs, max_faulty=t)
        check_proxcensus_consistency(
            res.outputs.values(), slots_after_rounds(rounds)
        )

    def test_multivalued_domain(self):
        res = run(factory(2), ["blue"] * 4, max_faulty=1)
        check_proxcensus_validity(res.outputs.values(), 5, "blue")


class TestAdversarialExecutions:
    @pytest.mark.parametrize("rounds", [1, 2, 3])
    @pytest.mark.parametrize("seed", range(6))
    def test_consistency_under_two_face(self, rounds, seed):
        adversary = TwoFaceAdversary(victims=[3], factory=factory(rounds))
        res = run(
            factory(rounds), [0, 0, 1, 1], max_faulty=1,
            adversary=adversary, seed=seed,
        )
        check_proxcensus_consistency(
            res.honest_outputs.values(), slots_after_rounds(rounds)
        )

    @pytest.mark.parametrize("n,t", [(4, 1), (7, 2), (10, 3)])
    def test_consistency_under_two_face_various_sizes(self, n, t):
        victims = list(range(n - t, n))
        adversary = TwoFaceAdversary(victims=victims, factory=factory(2))
        inputs = [i % 2 for i in range(n)]
        res = run(factory(2), inputs, max_faulty=t, adversary=adversary, seed=3)
        check_proxcensus_consistency(res.honest_outputs.values(), 5)

    def test_validity_not_broken_by_two_face(self):
        """Pre-agreement among honest parties must survive equivocation."""
        adversary = TwoFaceAdversary(victims=[3], factory=factory(3))
        res = run(factory(3), [1, 1, 1, 0], max_faulty=1, adversary=adversary)
        check_proxcensus_validity(res.honest_outputs.values(), 9, 1)

    def test_crash_adversary(self):
        res = run(
            factory(3), [1, 1, 1, 1], max_faulty=1,
            adversary=CrashAdversary(victims=[2], crash_round=2),
        )
        check_proxcensus_validity(res.honest_outputs.values(), 9, 1)

    def test_malformed_adversary(self):
        res = run(
            factory(3), [0, 1, 0, 1], max_faulty=1,
            adversary=MalformedAdversary(victims=[3]),
        )
        check_proxcensus_consistency(res.honest_outputs.values(), 9)

    def test_adaptive_mid_protocol_corruption(self):
        adversary = LastRoundCorruptionAdversary(victim=0, strike_round=2)
        res = run(factory(3), [1, 1, 1, 1], max_faulty=1, adversary=adversary)
        check_proxcensus_validity(res.honest_outputs.values(), 9, 1)

    def test_grades_bounded_by_construction(self):
        adversary = MalformedAdversary(victims=[3])
        res = run(factory(4), [0, 1, 1, 0], max_faulty=1, adversary=adversary)
        grades = max_grade(slots_after_rounds(4))
        for output in res.honest_outputs.values():
            assert 0 <= output.grade <= grades
