"""Tests for the Proxcensus family registry."""

import pytest

from repro.proxcensus.registry import FAMILIES, family


class TestRegistry:
    def test_all_families_present(self):
        assert set(FAMILIES) == {
            "one_third",
            "linear_half",
            "quadratic_half",
            "proxcast",
        }

    def test_unknown_family_raises_with_hint(self):
        with pytest.raises(KeyError, match="linear_half"):
            family("nope")

    @pytest.mark.parametrize(
        "name,rounds,slots",
        [
            ("one_third", 4, 17),
            ("linear_half", 4, 7),
            ("quadratic_half", 6, 15),
            ("proxcast", 4, 5),
        ],
    )
    def test_slot_formulas(self, name, rounds, slots):
        assert family(name).slots_for_rounds(rounds) == slots

    def test_growth_ordering_for_large_rounds(self):
        """Asymptotics: exponential > quadratic > linear ~ proxcast."""
        rounds = 20
        one_third = family("one_third").slots_for_rounds(rounds)
        quadratic = family("quadratic_half").slots_for_rounds(rounds)
        linear = family("linear_half").slots_for_rounds(rounds)
        proxcast = family("proxcast").slots_for_rounds(rounds)
        assert one_third > quadratic > linear > proxcast

    def test_grades_derived_from_slots(self):
        assert family("one_third").grades_for_rounds(3) == 4
