"""Tests for the certificate-based gradecast (MV-style building block)."""

import pytest

from repro.adversary.strategies import (
    CrashAdversary,
    MalformedAdversary,
    TwoFaceAdversary,
)
from repro.proxcensus.gradecast_cert import certificate_gradecast_program

from ..conftest import run


def factory(dealer=0):
    return lambda c, v: certificate_gradecast_program(c, v, dealer, default="∅")


class TestHonestDealer:
    def test_validity_grade_two(self):
        res = run(factory(), ["pkg"] * 5, max_faulty=2)
        for output in res.outputs.values():
            assert output.value == "pkg" and output.grade == 2
        assert res.metrics.rounds == 3

    def test_validity_with_byzantine_relayers(self):
        res = run(
            factory(), ["pkg"] * 5, max_faulty=2,
            adversary=MalformedAdversary(victims=[3, 4]),
        )
        # Quorum n-t = 3 is met by the 3 honest parties alone.
        for output in res.honest_outputs.values():
            assert output.value == "pkg" and output.grade == 2

    def test_certificates_carry_nt_signatures(self):
        """The factor-n overhead of §3.5: round 3 ships n-t sigs/message."""
        res = run(factory(), ["pkg"] * 5, max_faulty=2)
        round3 = res.metrics.per_round[3]
        # 5 senders x 5 recipients x (n-t = 3 signatures) = 75
        assert round3.honest_signatures == 75


class TestEquivocatingDealer:
    @pytest.mark.parametrize("seed", range(5))
    def test_consistency(self, seed):
        adversary = TwoFaceAdversary(
            victims=[0], factory=factory(), low_input="a", high_input="b"
        )
        res = run(
            factory(), ["a"] * 5, max_faulty=2, adversary=adversary, seed=seed
        )
        outputs = list(res.honest_outputs.values())
        graded = [o for o in outputs if o.grade >= 1]
        assert len({o.value for o in graded}) <= 1
        grades = [o.grade for o in outputs]
        assert max(grades) - min(grades) <= 1

    def test_silent_dealer_grade_zero(self):
        res = run(
            factory(), ["x"] * 5, max_faulty=2,
            adversary=CrashAdversary(victims=[0], crash_round=1),
        )
        for output in res.honest_outputs.values():
            assert output == type(output)("∅", 0)


class TestValidation:
    def test_requires_honest_majority(self):
        with pytest.raises(ValueError):
            run(factory(), ["x", "y"], max_faulty=1)

    def test_invalid_dealer(self):
        with pytest.raises(ValueError):
            run(factory(dealer=7), ["x"] * 5, max_faulty=2)
