"""Tests for the standalone expansion step (paper Fig. 2, executed).

The iterated t<n/3 chain only visits odd slot counts (2^r + 1), but the
expansion itself is defined for any ``s >= 2`` — including the Fig. 2
``Prox_4 → Prox_7`` example.  Here we feed parties *synthetic* inner
configurations (any Definition-2-consistent placement, which is exactly
what a real inner Proxcensus could output) and check the expanded outputs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.proxcensus.base import (
    check_proxcensus_consistency,
    check_proxcensus_validity,
    max_grade,
    slot_index,
    slot_label,
)
from repro.proxcensus.one_third import prox_expand_once_program

from ..conftest import run


def expand(inner_slots):
    return lambda ctx, pair: prox_expand_once_program(
        ctx, pair[0], pair[1], inner_slots
    )


class TestFromSyntheticConfigurations:
    @pytest.mark.parametrize("inner", [2, 3, 4, 5, 6, 9])
    @pytest.mark.parametrize("bit", [0, 1])
    def test_pre_agreement_on_extremal_slot(self, inner, bit):
        """Everyone at (b, G_inner) must land at (b, G_outer)."""
        pair = (bit, max_grade(inner))
        res = run(expand(inner), [pair] * 4, 1, session=f"e{inner}{bit}")
        check_proxcensus_validity(res.outputs.values(), 2 * inner - 1, bit)

    @given(
        inner=st.integers(min_value=2, max_value=9),
        position=st.integers(min_value=0, max_value=100),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_adjacent_inner_configurations_stay_consistent(
        self, inner, position, data
    ):
        """Any two-adjacent-slot inner placement expands consistently."""
        position %= inner - 1  # left slot of the adjacent pair
        labels = [slot_label(position, inner), slot_label(position + 1, inner)]
        pairs = []
        for _ in range(4):
            value, grade = labels[data.draw(st.integers(0, 1))]
            if value is None:
                value, grade = data.draw(st.integers(0, 1)), 0
            pairs.append((value, grade))
        res = run(
            expand(inner), pairs, 1,
            session=f"ea{inner}-{position}-{hash(tuple(pairs)) & 0xFFF}",
        )
        check_proxcensus_consistency(res.outputs.values(), 2 * inner - 1)

    def test_fig2_prox4_to_prox7(self):
        """The figure's even-s example: Prox_4 inner states, 7 outer slots."""
        # All four parties at (1, 1) — the rightmost Prox_4 slot.
        res = run(expand(4), [(1, 1)] * 4, 1, session="f4a")
        check_proxcensus_validity(res.outputs.values(), 7, 1)
        # Straddling (1,0)/(1,1): outputs must stay within two adjacent
        # slots of Prox_7 on value 1.
        res = run(expand(4), [(1, 0), (1, 1), (1, 1), (1, 0)], 1, session="f4b")
        check_proxcensus_consistency(res.outputs.values(), 7)
        for output in res.outputs.values():
            assert output.value == 1 and output.grade >= 1

    def test_grade_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            run(expand(4), [(1, 2)] * 4, 1, session="f4x")

    def test_resilience_guard(self):
        with pytest.raises(ValueError):
            run(expand(4), [(1, 1)] * 3, 1, session="f4y")
