"""Test package."""
