"""Tests for the t < n/2 linear Proxcensus (Lemma 3): Prox_{2r-1}."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.strategies import (
    CrashAdversary,
    MalformedAdversary,
    TwoFaceAdversary,
)
from repro.proxcensus.base import (
    check_proxcensus_consistency,
    check_proxcensus_validity,
)
from repro.proxcensus.linear_half import (
    grade_conditions,
    prox_linear_half_program,
    slots_after_rounds,
)

from ..conftest import run


def factory(rounds):
    return lambda ctx, x: prox_linear_half_program(ctx, x, rounds=rounds)


class TestStatics:
    @pytest.mark.parametrize("rounds,slots", [(2, 3), (3, 5), (4, 7), (6, 11)])
    def test_slot_growth_formula(self, rounds, slots):
        assert slots_after_rounds(rounds) == slots

    def test_too_few_rounds_rejected(self):
        with pytest.raises(ValueError):
            slots_after_rounds(1)

    def test_grade_conditions_match_paper_table1(self):
        """Table 1 (r = 3): slot deadlines for Prox_5."""
        conditions = grade_conditions(3)
        assert conditions[2] == {"sigma_by": 1, "no_other_by": 3, "omega_by": 2}
        assert conditions[1] == {"sigma_by": 2, "no_other_by": 2, "omega_by": 3}

    def test_resilience_guard(self):
        with pytest.raises(ValueError):
            run(factory(3), [0, 1], max_faulty=1)  # n=2, t=1 violates 2t<n


class TestHonestExecutions:
    @pytest.mark.parametrize("rounds", [2, 3, 4, 5])
    @pytest.mark.parametrize("bit", [0, 1])
    def test_validity_under_pre_agreement(self, rounds, bit):
        res = run(factory(rounds), [bit] * 5, max_faulty=2)
        check_proxcensus_validity(
            res.outputs.values(), slots_after_rounds(rounds), bit
        )

    def test_rounds_consumed(self):
        res = run(factory(4), [1, 0, 1, 0, 1], max_faulty=2)
        assert res.metrics.rounds == 4

    def test_signatures_on_the_wire(self):
        """Lemma 3 measures communication in signatures: O(r n²)."""
        res = run(factory(3), [1, 0, 1, 0, 1], max_faulty=2)
        assert res.metrics.total_signatures > 0

    @given(
        inputs=st.lists(st.integers(0, 1), min_size=3, max_size=7),
        rounds=st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_consistency_any_inputs_no_adversary(self, inputs, rounds):
        n = len(inputs)
        t = (n - 1) // 2
        res = run(factory(rounds), inputs, max_faulty=t)
        check_proxcensus_consistency(
            res.outputs.values(), slots_after_rounds(rounds)
        )

    def test_multivalued_domain(self):
        res = run(factory(3), ["tx9"] * 5, max_faulty=2)
        check_proxcensus_validity(res.outputs.values(), 5, "tx9")


class TestAdversarialExecutions:
    @pytest.mark.parametrize("rounds", [2, 3, 4])
    @pytest.mark.parametrize("seed", range(6))
    def test_consistency_under_two_face(self, rounds, seed):
        adversary = TwoFaceAdversary(victims=[3, 4], factory=factory(rounds))
        res = run(
            factory(rounds), [0, 0, 1, 1, 0], max_faulty=2,
            adversary=adversary, seed=seed,
        )
        check_proxcensus_consistency(
            res.honest_outputs.values(), slots_after_rounds(rounds)
        )

    def test_validity_not_broken_by_two_face(self):
        adversary = TwoFaceAdversary(victims=[3, 4], factory=factory(3))
        res = run(factory(3), [1, 1, 1, 0, 0], max_faulty=2, adversary=adversary)
        check_proxcensus_validity(res.honest_outputs.values(), 5, 1)

    def test_crash_adversary(self):
        res = run(
            factory(3), [1, 1, 1, 1, 1], max_faulty=2,
            adversary=CrashAdversary(victims=[3, 4], crash_round=2),
        )
        check_proxcensus_validity(res.honest_outputs.values(), 5, 1)

    def test_malformed_adversary(self):
        res = run(
            factory(4), [0, 1, 0, 1, 1], max_faulty=2,
            adversary=MalformedAdversary(victims=[4]),
        )
        check_proxcensus_consistency(res.honest_outputs.values(), 7)

    def test_equivocating_shares_cannot_forge_quorum(self):
        """With 2 honest 0-voters, 1 honest 1-voter and 2 equivocators,
        no quorum signature on value 1 can involve n-t=3 distinct signers
        unless the equivocators both sign it — which they may; but then the
        honest outputs must still be consistent."""
        adversary = TwoFaceAdversary(
            victims=[3, 4], factory=factory(3), low_input=0, high_input=1
        )
        res = run(factory(3), [0, 0, 1, 0, 1], max_faulty=2, adversary=adversary)
        check_proxcensus_consistency(res.honest_outputs.values(), 5)
