"""Test package."""
