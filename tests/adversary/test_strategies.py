"""Tests for the concrete adversary strategies (mechanics, not protocols)."""

import pytest

from repro.adversary.strategies import (
    CrashAdversary,
    EavesdropCoinAdversary,
    LastRoundCorruptionAdversary,
    MalformedAdversary,
    TwoFaceAdversary,
)
from repro.network.messages import Broadcast

from ..conftest import run


def gossip(ctx, value):
    """Two-round program that returns everything it heard."""
    heard = []
    inbox = yield ctx.broadcast({"v": value, "round": 1})
    heard.append(dict(inbox))
    inbox = yield ctx.broadcast({"v": value, "round": 2})
    heard.append(dict(inbox))
    return heard


class TestCrash:
    def test_behaves_honestly_before_crash(self):
        res = run(
            gossip, [1, 2, 3, 4], max_faulty=1,
            adversary=CrashAdversary(victims=[3], crash_round=2),
        )
        round1, round2 = res.outputs[0]
        assert 3 in round1      # spoke in round 1
        assert 3 not in round2  # silent from round 2

    def test_crash_from_start(self):
        res = run(
            gossip, [1, 2, 3, 4], max_faulty=1,
            adversary=CrashAdversary(victims=[3], crash_round=1),
        )
        round1, round2 = res.outputs[0]
        assert 3 not in round1 and 3 not in round2


class TestMalformed:
    def test_garbage_reaches_recipients_without_crashing(self):
        res = run(
            gossip, [1, 2, 3, 4], max_faulty=1,
            adversary=MalformedAdversary(victims=[3]),
        )
        round1, _ = res.outputs[0]
        assert 3 in round1  # garbage was delivered
        assert res.outputs[0] is not None  # honest party survived


class TestTwoFace:
    def test_two_groups_see_different_faces(self):
        adversary = TwoFaceAdversary(
            victims=[3], factory=gossip, low_input="L", high_input="H"
        )
        res = run(gossip, ["a", "b", "c", "d"], max_faulty=1, adversary=adversary)
        low_view = res.outputs[0][0][3]   # party 0 (low group), round 1
        high_view = res.outputs[2][0][3]  # party 2 (high group), round 1
        assert low_view["v"] == "L"
        assert high_view["v"] == "H"

    def test_custom_low_group(self):
        adversary = TwoFaceAdversary(
            victims=[3], factory=gossip, low_input="L", high_input="H",
            low_group={2},
        )
        res = run(gossip, ["a", "b", "c", "d"], max_faulty=1, adversary=adversary)
        assert res.outputs[2][0][3]["v"] == "L"
        assert res.outputs[0][0][3]["v"] == "H"

    def test_twins_track_rounds(self):
        adversary = TwoFaceAdversary(victims=[3], factory=gossip)
        res = run(gossip, [0, 0, 1, 1], max_faulty=1, adversary=adversary)
        assert res.outputs[0][1][3]["round"] == 2  # twin advanced to round 2


class TestLastRoundCorruption:
    def test_strike_drops_in_flight_messages(self):
        adversary = LastRoundCorruptionAdversary(victim=0, strike_round=2)
        res = run(gossip, [1, 2, 3, 4], max_faulty=1, adversary=adversary)
        round1, round2 = res.outputs[1]
        assert 0 in round1       # round 1 was honest
        assert 0 not in round2   # round-2 messages seized and dropped
        assert res.corrupted == {0}

    def test_strike_with_replacement(self):
        adversary = LastRoundCorruptionAdversary(
            victim=0, strike_round=2, replacement=Broadcast({"v": "fake"})
        )
        res = run(gossip, [1, 2, 3, 4], max_faulty=1, adversary=adversary)
        assert res.outputs[1][1][0] == {"v": "fake"}


class TestEavesdropCoin:
    def test_opens_overlapped_coin_during_its_round(self):
        from repro.core.ba import ba_one_half_program

        adversary = EavesdropCoinAdversary(victims=[4], coin_low=1, coin_high=4)
        res = run(
            lambda c, b: ba_one_half_program(c, b, kappa=4),
            [1, 0, 1, 0, 1],
            max_faulty=2,
            adversary=adversary,
            session="eav",
        )
        # The coin of iteration 0 runs inside rounds 1-3 (parallel to
        # Proxcensus round 3): the adversary must have opened it at round 3.
        opened = {
            index: round_and_value
            for (session, index), round_and_value in adversary.opened.items()
        }
        assert ("ba12", 0) in opened
        strike_round, value = opened[("ba12", 0)]
        assert strike_round == 3
        assert 1 <= value <= 4
        # ...and agreement held anyway (the slot pair was already fixed).
        assert res.honest_agree()
