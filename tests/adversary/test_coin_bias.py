"""Tests for the withholding coin-bias adversary's mechanics."""

import pytest

from repro.adversary.coin_bias import WithholdingCoinAdversary
from repro.crypto.vrf_coin import vrf_coin_program

from ..conftest import run


def vrf_factory(index=0, low=0, high=1):
    def factory(ctx, _):
        value = yield from vrf_coin_program(ctx, index, low, high)
        return value

    return factory


class TestWithholdingMechanics:
    def test_silent_on_rounds_without_vrf_traffic(self):
        """Against a non-coin protocol the adversary just goes dark."""

        def chatter(ctx, _):
            inbox = yield ctx.broadcast({"v": 1})
            return sorted(inbox)

        adversary = WithholdingCoinAdversary(
            [3], index=0, low=0, high=1, preferred=1
        )
        res = run(chatter, [None] * 4, 1, adversary=adversary, session="wb1")
        # party 3 sent nothing; honest traffic flowed
        assert 3 not in res.outputs[0]
        assert adversary.steered == 0

    def test_honest_parties_get_a_consistent_coin(self):
        for trial in range(20):
            adversary = WithholdingCoinAdversary(
                [3], index=trial, low=0, high=3, preferred=0,
                session=f"wb2-{trial}",
            )
            res = run(
                vrf_factory(trial, 0, 3), [None] * 4, 1,
                adversary=adversary, session=f"wb2-{trial}",
            )
            assert len(set(res.honest_outputs.values())) == 1

    def test_steered_counter_only_counts_real_divergence(self):
        total_steered = 0
        preferred_hits_with = 0
        preferred_hits_without = 0
        trials = 60
        for trial in range(trials):
            session = f"wb3-{trial}"
            baseline = run(
                vrf_factory(trial), [None] * 4, 1, session=session
            )
            adversary = WithholdingCoinAdversary(
                [3], index=trial, low=0, high=1, preferred=1, session=session
            )
            attacked = run(
                vrf_factory(trial), [None] * 4, 1,
                adversary=adversary, session=session,
            )
            total_steered += adversary.steered
            preferred_hits_without += baseline.honest_outputs[0] == 1
            preferred_hits_with += attacked.honest_outputs[0] == 1
        # paired exactness: gains == steered
        assert preferred_hits_with == preferred_hits_without + total_steered

    def test_session_defaults_to_environment(self):
        adversary = WithholdingCoinAdversary([3], index=5, low=0, high=1, preferred=1)
        run(vrf_factory(5), [None] * 4, 1, adversary=adversary, session="wb4")
        assert adversary.session == "wb4"
