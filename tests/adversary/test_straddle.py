"""Tests for the worst-case straddle adversaries (Theorem 1 tightness)."""

import pytest

from repro.adversary.straddle import (
    LinearHalfStraddleAdversary,
    OneThirdStraddleAdversary,
)
from repro.analysis.experiments import (
    ExperimentSetup,
    disagreement_rate,
    run_trials,
)
from repro.core.ba import ba_one_half_program, ba_one_third_program
from repro.proxcensus.base import (
    check_proxcensus_consistency,
    slot_index,
)
from repro.proxcensus.linear_half import prox_linear_half_program
from repro.proxcensus.one_third import prox_one_third_program

from ..conftest import run


class TestOneThirdStraddle:
    @pytest.mark.parametrize("rounds", [1, 2, 3, 4])
    def test_maintains_adjacent_straddle(self, rounds):
        factory = lambda c, b: prox_one_third_program(c, b, rounds=rounds)
        res = run(
            factory, [0, 0, 1, 1], max_faulty=1,
            adversary=OneThirdStraddleAdversary([3]), session=f"os{rounds}",
        )
        outputs = list(res.honest_outputs.values())
        slots = 2 ** rounds + 1
        check_proxcensus_consistency(outputs, slots)
        positions = {slot_index(o.value, o.grade, slots) for o in outputs}
        assert len(positions) == 2, "straddle must persist across expansions"
        low, high = sorted(positions)
        assert high - low == 1

    def test_cannot_break_validity(self):
        factory = lambda c, b: prox_one_third_program(c, b, rounds=3)
        res = run(
            factory, [1, 1, 1, 0], max_faulty=1,
            adversary=OneThirdStraddleAdversary([3]), session="osv",
        )
        for output in res.honest_outputs.values():
            assert output.value == 1 and output.grade == 4

    @pytest.mark.parametrize("seed", range(4))
    def test_straddle_scales_to_larger_networks(self, seed):
        """n = 7, t = 2: the mirror strategy still pins two adjacent slots."""
        factory = lambda c, b: prox_one_third_program(c, b, rounds=3)
        res = run(
            factory, [0, 0, 0, 1, 1, 1, 1], max_faulty=2,
            adversary=OneThirdStraddleAdversary([5, 6]),
            seed=seed, session=f"os7-{seed}",
        )
        outputs = list(res.honest_outputs.values())
        check_proxcensus_consistency(outputs, 9)
        positions = {slot_index(o.value, o.grade, 9) for o in outputs}
        assert len(positions) == 2
        low, high = sorted(positions)
        assert high - low == 1

    def test_achieves_theorem1_rate_on_full_ba(self):
        setup = ExperimentSetup(num_parties=4, max_faulty=1)
        factory = lambda c, b: ba_one_third_program(c, b, kappa=2)
        rate = disagreement_rate(
            run_trials(
                setup, factory, [0, 0, 1, 1], trials=150,
                adversary_factory=lambda: OneThirdStraddleAdversary([3]),
                seed=7,
            )
        )
        assert 0.15 <= rate <= 0.35  # bound is 1/4; the attack realizes it


class TestLinearHalfStraddle:
    def test_produces_grade1_grade0_adjacency(self):
        # One bare iteration of the 3-round Prox_5 under the attack.
        factory = lambda c, b: prox_linear_half_program(c, b, rounds=3)

        class BareProxStraddle(LinearHalfStraddleAdversary):
            # outside the BA wrapper the session is not iter-suffixed
            def _session(self, iteration):
                return self.env.session

        res = run(
            factory, [0, 0, 1, 1, 1], max_faulty=2,
            adversary=BareProxStraddle([3, 4]), session="ls",
        )
        outputs = sorted(
            res.honest_outputs.values(), key=lambda o: o.grade, reverse=True
        )
        check_proxcensus_consistency(outputs, 5)
        grades = sorted(o.grade for o in outputs)
        assert grades == [0, 0, 1], outputs

    def test_cannot_break_validity(self):
        setup = ExperimentSetup(num_parties=5, max_faulty=2)
        factory = lambda c, b: ba_one_half_program(c, b, kappa=4)
        results = run_trials(
            setup, factory, [1, 1, 1, 1, 1], trials=10,
            adversary_factory=lambda: LinearHalfStraddleAdversary([3, 4]),
        )
        for result in results:
            assert all(v == 1 for v in result.honest_outputs.values())

    def test_achieves_quarter_rate_per_iteration(self):
        setup = ExperimentSetup(num_parties=5, max_faulty=2)
        factory = lambda c, b: ba_one_half_program(c, b, kappa=2)  # 1 iteration
        rate = disagreement_rate(
            run_trials(
                setup, factory, [0, 0, 1, 1, 1], trials=150,
                adversary_factory=lambda: LinearHalfStraddleAdversary([3, 4]),
                seed=9,
            )
        )
        assert 0.15 <= rate <= 0.35  # bound 1/4, realized
