"""Larger-configuration integration tests (bigger n, deeper protocols)."""

import pytest

from repro.adversary.strategies import CrashAdversary, TwoFaceAdversary
from repro.core.ba import ba_one_half_program, ba_one_third_program
from repro.proxcensus.base import check_proxcensus_consistency
from repro.proxcensus.linear_half import prox_linear_half_program
from repro.proxcensus.one_third import prox_one_third_program
from repro.proxcensus.quadratic_half import (
    prox_quadratic_half_program,
    slots_after_rounds,
)

from .conftest import run


class TestLargerNetworks:
    def test_one_third_n13(self):
        n, t = 13, 4
        inputs = [i % 2 for i in range(n)]
        factory = lambda c, b: ba_one_third_program(c, b, kappa=6)
        adversary = TwoFaceAdversary(victims=list(range(n - t, n)), factory=factory)
        res = run(factory, inputs, t, adversary=adversary, session="big13")
        assert res.honest_agree()

    def test_one_half_n11(self):
        n, t = 11, 5
        inputs = [i % 2 for i in range(n)]
        factory = lambda c, b: ba_one_half_program(c, b, kappa=6)
        adversary = CrashAdversary(victims=list(range(n - t, n)), crash_round=2)
        res = run(factory, inputs, t, adversary=adversary, session="big12")
        assert res.honest_agree()

    def test_max_corruption_boundary_one_third(self):
        """n = 3t + 1 exactly — the resilience optimum of [15]."""
        for t in (1, 2, 3):
            n = 3 * t + 1
            inputs = [1] * n
            adversary = CrashAdversary(victims=list(range(n - t, n)), crash_round=1)
            res = run(
                lambda c, b: ba_one_third_program(c, b, kappa=4),
                inputs, t, adversary=adversary, session=f"edge{t}",
            )
            assert all(v == 1 for v in res.honest_outputs.values())

    def test_max_corruption_boundary_one_half(self):
        """n = 2t + 1 exactly — a single honest party beyond the corrupt."""
        for t in (1, 2, 3):
            n = 2 * t + 1
            inputs = [0] * n
            adversary = CrashAdversary(victims=list(range(n - t, n)), crash_round=1)
            res = run(
                lambda c, b: ba_one_half_program(c, b, kappa=4),
                inputs, t, adversary=adversary, session=f"edgeh{t}",
            )
            assert all(v == 0 for v in res.honest_outputs.values())


class TestDeeperProxcensus:
    def test_one_third_eight_rounds(self):
        """257 slots; grades up to 128."""
        res = run(
            lambda c, x: prox_one_third_program(c, x, rounds=8),
            [1, 0, 1, 0], 1, session="deep13",
        )
        check_proxcensus_consistency(res.outputs.values(), 257)

    def test_linear_half_eight_rounds(self):
        res = run(
            lambda c, x: prox_linear_half_program(c, x, rounds=8),
            [1, 0, 1, 0, 1], 2, session="deeplh",
        )
        check_proxcensus_consistency(res.outputs.values(), 15)

    @pytest.mark.parametrize("rounds", [7, 8])
    def test_quadratic_deep(self, rounds):
        res = run(
            lambda c, x: prox_quadratic_half_program(c, x, rounds=rounds),
            [1, 0, 1, 0, 1], 2, session=f"deepq{rounds}",
        )
        check_proxcensus_consistency(
            res.outputs.values(), slots_after_rounds(rounds)
        )

    def test_quadratic_deep_validity(self):
        res = run(
            lambda c, x: prox_quadratic_half_program(c, x, rounds=8),
            [1] * 5, 2, session="deepqv",
        )
        grades = {o.grade for o in res.outputs.values()}
        assert grades == {(slots_after_rounds(8) - 1) // 2}
