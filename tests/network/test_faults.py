"""Unit tests for the fault-injection layer's semantics.

The load-bearing properties, each pinned directly against
``repro.network.faults`` or a small simulator run:

* construction validation fails loudly (bad rates, inverted windows,
  overlapping partition groups, half-configured membership rotation);
* the offline/partition schedules decode rounds exactly as documented;
* ``faults=None`` and a no-op plan are byte-identical to the
  pre-fault-layer simulator;
* extreme plans (``loss=1.0``, a never-healing split, a full crash
  window) degrade deliveries without ever crashing an honest party.
"""

from __future__ import annotations

import random

import pytest

from repro.core.ba import ba_one_third_program
from repro.network.faults import (
    Crash,
    FaultInjector,
    FaultPlan,
    Partition,
)
from repro.network.simulator import SimulationError, SyncSimulator

from ..conftest import ideal_suite


def _factory(kappa=3):
    return lambda ctx, value: ba_one_third_program(ctx, value, kappa=kappa)


def _run(inputs, faults, seed=0, session="faults", kappa=3):
    simulator = SyncSimulator(
        num_parties=len(inputs),
        max_faulty=(len(inputs) - 1) // 3,
        crypto=ideal_suite(len(inputs), (len(inputs) - 1) // 3),
        seed=seed,
        session=session,
        faults=faults,
    )
    result = simulator.run(_factory(kappa), inputs)
    return result, simulator.last_fault_counts


class TestPartition:
    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty group"):
            Partition(groups=())
        with pytest.raises(ValueError, match="non-empty group"):
            Partition(groups=((), ()))
        with pytest.raises(ValueError, match="two partition groups"):
            Partition(groups=((0, 1), (1, 2)))
        with pytest.raises(ValueError, match="start must be >= 1"):
            Partition(groups=((0,),), start=0)
        with pytest.raises(ValueError, match="heal round must exceed"):
            Partition(groups=((0,),), start=3, heal=3)

    def test_active_window(self):
        split = Partition(groups=((0, 1),), start=2, heal=4)
        assert [split.active(r) for r in (1, 2, 3, 4)] == [
            False, True, True, False,
        ]
        forever = Partition(groups=((0, 1),), start=1)
        assert forever.active(4096)

    def test_separates_with_implicit_rest_group(self):
        # Parties 0,1 are listed; 2,3 form the implicit rest group.
        split = Partition(groups=((0, 1),))
        assert split.separates(0, 2) and split.separates(3, 1)
        assert not split.separates(0, 1)
        assert not split.separates(2, 3)  # both in the rest group


class TestCrashAndPlanValidation:
    def test_crash_window(self):
        with pytest.raises(ValueError, match="pid must be >= 0"):
            Crash(pid=-1, down=1, up=2)
        with pytest.raises(ValueError, match="1 <= down < up"):
            Crash(pid=0, down=2, up=2)
        with pytest.raises(ValueError, match="1 <= down < up"):
            Crash(pid=0, down=0, up=2)

    @pytest.mark.parametrize("kwargs", [
        {"loss": -0.1}, {"loss": 1.5}, {"delay": 2.0}, {"max_delay": 0},
        {"epoch_length": 2}, {"disabled": ((0,),)}, {"epoch_length": -1},
    ])
    def test_plan_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_noop_detection(self):
        assert FaultPlan().is_noop()
        assert FaultPlan(max_delay=3).is_noop()  # no delay probability
        assert not FaultPlan(loss=0.01).is_noop()
        assert not FaultPlan(crashes=(Crash(0, 1, 2),)).is_noop()


class TestSchedules:
    def test_crash_offline_window(self):
        plan = FaultPlan(crashes=(Crash(pid=1, down=2, up=4),))
        assert plan.offline(1) == frozenset()
        assert plan.offline(2) == plan.offline(3) == frozenset({1})
        assert plan.offline(4) == frozenset()

    def test_membership_rotation(self):
        plan = FaultPlan(epoch_length=2, disabled=((0,), (), (3, 4)))
        # Epoch 0 = rounds 1-2, epoch 1 = rounds 3-4, epoch 2 = rounds
        # 5-6, then the rotation wraps.
        assert plan.offline(1) == plan.offline(2) == frozenset({0})
        assert plan.offline(3) == frozenset()
        assert plan.offline(5) == frozenset({3, 4})
        assert plan.offline(7) == frozenset({0})

    def test_crashes_and_rotation_union(self):
        plan = FaultPlan(
            crashes=(Crash(pid=2, down=1, up=3),),
            epoch_length=1,
            disabled=((0,),),
        )
        assert plan.offline(1) == frozenset({0, 2})


class TestInjector:
    def test_self_delivery_draws_no_randomness(self):
        rng = random.Random(1)
        injector = FaultInjector(FaultPlan(loss=1.0), 4, rng)
        state = rng.getstate()
        assert injector.route(1, 2, 2, frozenset()) == ("deliver", 0)
        assert rng.getstate() == state

    def test_route_precedence_offline_before_partition_before_loss(self):
        plan = FaultPlan(
            loss=1.0, partitions=(Partition(groups=((0,),)),),
        )
        injector = FaultInjector(plan, 4, random.Random(2))
        assert injector.route(1, 0, 1, frozenset({0}))[0] == "offline"
        assert injector.route(1, 0, 1, frozenset())[0] == "partition"
        assert injector.route(1, 1, 2, frozenset())[0] == "loss"

    def test_due_sorts_freshest_first(self):
        injector = FaultInjector(FaultPlan(delay=1.0), 4, random.Random(3))
        injector.defer(1, 2, 0, 1, "old", True)
        injector.defer(2, 1, 3, 1, "new", True)
        due = injector.due(3)
        assert [(m.sent_round, m.payload) for m in due] == [
            (2, "new"), (1, "old"),
        ]
        assert injector.pending() == 0


class TestSimulatorIntegration:
    def test_noop_plan_is_byte_identical_to_none(self):
        inputs = (1, 0, 1, 0, 1)
        baseline, _ = _run(inputs, None, seed=11)
        noop, counts = _run(inputs, FaultPlan(), seed=11)
        assert noop == baseline
        assert list(noop.outputs) == list(baseline.outputs)
        assert counts.suppressed == 0 and counts.delayed == 0

    def test_faulted_run_is_deterministic(self):
        inputs = (1, 0, 1, 0, 1, 0, 1)
        plan = FaultPlan(
            loss=0.2, delay=0.2, max_delay=2,
            partitions=(Partition(groups=((0, 1),), start=2, heal=4),),
            crashes=(Crash(pid=3, down=1, up=3),),
        )
        first, counts_a = _run(inputs, plan, seed=5)
        second, counts_b = _run(inputs, plan, seed=5)
        assert first == second
        assert counts_a == counts_b
        # A different seed draws a different fault sequence.
        third, counts_c = _run(inputs, plan, seed=6)
        assert counts_c != counts_a or third != first

    def test_total_loss_still_terminates_with_binary_outputs(self):
        # loss=1.0 eats every non-self message; the fixed-round program
        # still terminates on empty inboxes and outputs bits.
        inputs = (1, 0, 1, 0)
        result, counts = _run(inputs, FaultPlan(loss=1.0), seed=1)
        assert set(result.outputs.values()) <= {0, 1}
        # Only self-deliveries survive (n per round; they are internal
        # state, exempt from every fault) — all cross traffic is lost.
        rounds = result.metrics.rounds
        assert counts.delivered == len(inputs) * rounds
        assert counts.lost == len(inputs) * (len(inputs) - 1) * rounds
        assert result.metrics.total_messages == counts.delivered

    def test_crashed_party_recovers_and_finishes(self):
        inputs = (1, 1, 1, 1, 1)
        plan = FaultPlan(crashes=(Crash(pid=2, down=1, up=3),))
        result, counts = _run(inputs, plan, seed=2)
        assert 2 in result.outputs  # kept running, finished after recovery
        assert counts.offline > 0
        # Pre-agreement on 1 survives a crash window (validity needs
        # only the honest majority's messages).
        assert set(result.outputs.values()) == {1}

    def test_legacy_metrics_refuses_faults(self):
        with pytest.raises(SimulationError, match="legacy_metrics"):
            SyncSimulator(
                num_parties=4,
                max_faulty=1,
                crypto=ideal_suite(4, 1),
                legacy_metrics=True,
                faults=FaultPlan(loss=0.1),
            )
