"""Tests for party-program combinators (parallel composition, resume)."""

from repro.network.messages import PARALLEL_KEY
from repro.network.party import resume_with, run_parallel

from ..conftest import run


def echo_program(ctx, tag, rounds):
    """Broadcasts `(tag, round)` each round; returns collected inboxes."""
    seen = []
    for round_index in range(rounds):
        inbox = yield ctx.broadcast({"tag": tag, "round": round_index})
        seen.append({s: p for s, p in sorted(inbox.items())})
    return seen


class TestRunParallel:
    def test_two_programs_share_rounds(self):
        def factory(ctx, _):
            results = yield from run_parallel(
                ctx,
                {
                    "a": echo_program(ctx, "A", 2),
                    "b": echo_program(ctx, "B", 2),
                },
            )
            return results

        res = run(factory, [None] * 3, max_faulty=0, session="par1")
        assert res.metrics.rounds == 2  # not 4: genuinely parallel
        results = res.outputs[0]
        assert results["a"][0][1] == {"tag": "A", "round": 0}
        assert results["b"][1][2] == {"tag": "B", "round": 1}

    def test_different_lengths(self):
        def factory(ctx, _):
            results = yield from run_parallel(
                ctx,
                {
                    "short": echo_program(ctx, "S", 1),
                    "long": echo_program(ctx, "L", 3),
                },
            )
            return results

        res = run(factory, [None] * 3, max_faulty=0, session="par2")
        assert res.metrics.rounds == 3
        assert len(res.outputs[0]["short"]) == 1
        assert len(res.outputs[0]["long"]) == 3

    def test_zero_round_program(self):
        def instant(ctx):
            return 42
            yield  # pragma: no cover - makes this a generator

        def factory(ctx, _):
            results = yield from run_parallel(
                ctx, {"now": instant(ctx), "later": echo_program(ctx, "E", 1)}
            )
            return results

        res = run(factory, [None] * 2, max_faulty=0, session="par3")
        assert res.outputs[0]["now"] == 42

    def test_malformed_parallel_envelope_ignored(self):
        """A Byzantine sender's non-dict envelope must not reach subprograms."""
        def sender(ctx, _):
            yield ctx.broadcast("not-an-envelope")
            return None

        def receiver(ctx, _):
            results = yield from run_parallel(ctx, {"e": echo_program(ctx, "E", 1)})
            return results["e"]

        def factory(ctx, _):
            if ctx.party_id == 0:
                return sender(ctx, None)
            return receiver(ctx, None)

        res = run(factory, [None] * 3, max_faulty=0, session="par4")
        # party 1 saw only parties 1 and 2 under tag "e" (party 0 malformed)
        assert set(res.outputs[1][0]) == {1, 2}


class TestResumeWith:
    def test_resume_preserves_round_alignment(self):
        def factory(ctx, _):
            inner = echo_program(ctx, "X", 3)
            first_outbox = next(inner)
            # Drive round 1 by hand, then hand over to run_parallel.
            inbox = yield first_outbox
            second_outbox = inner.send(inbox)
            results = yield from run_parallel(
                ctx, {"x": resume_with(inner, second_outbox)}
            )
            return results["x"]

        res = run(factory, [None] * 2, max_faulty=0, session="par5")
        assert res.metrics.rounds == 3
        assert len(res.outputs[0]) == 3


class TestContext:
    def test_subsession_extends_tag(self):
        def factory(ctx, _):
            sub = ctx.subsession("child")
            return sub.session
            yield  # pragma: no cover

        res = run(factory, [None] * 2, max_faulty=0, session="root")
        assert res.outputs[0] == "root/child"

    def test_quorum_size(self):
        def factory(ctx, _):
            return ctx.quorum_size
            yield  # pragma: no cover

        res = run(factory, [None] * 5, max_faulty=2, session="q")
        assert res.outputs[0] == 3
