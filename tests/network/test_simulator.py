"""Tests for the synchronous simulator and adversary interposition."""

import random

import pytest

from repro.adversary.base import Adversary, RoundDecision
from repro.crypto.keys import CryptoSuite
from repro.network.errors import (
    AdversaryBudgetError,
    RoundLimitError,
    SimulationError,
)
from repro.network.simulator import SyncSimulator, run_protocol

from ..conftest import ideal_suite, run


def one_round_echo(ctx, value):
    inbox = yield ctx.broadcast({"v": value})
    return sorted((s, p.get("v")) for s, p in inbox.items() if isinstance(p, dict))


class TestBasics:
    def test_delivery_is_complete_and_authenticated(self):
        res = run(one_round_echo, [10, 20, 30], max_faulty=0)
        assert res.outputs[0] == [(0, 10), (1, 20), (2, 30)]
        assert res.outputs[2] == [(0, 10), (1, 20), (2, 30)]

    def test_rounds_counted(self):
        def two_rounds(ctx, v):
            yield ctx.broadcast(None)
            yield ctx.broadcast(None)
            return v

        res = run(two_rounds, [1, 2], max_faulty=0)
        assert res.metrics.rounds == 2

    def test_zero_round_program(self):
        def instant(ctx, v):
            return v * 2
            yield  # pragma: no cover

        res = run(instant, [1, 2], max_faulty=0)
        assert res.outputs == {0: 2, 1: 4}
        assert res.metrics.rounds == 0

    def test_unicast_only_reaches_target(self):
        def directed(ctx, v):
            inbox = yield {1: {"v": v}}
            return sorted(inbox)

        res = run(directed, [0, 1, 2], max_faulty=0)
        assert res.outputs[1] == [0, 1, 2]
        assert res.outputs[0] == []
        assert res.outputs[2] == []

    def test_determinism(self):
        def coin_ish(ctx, _):
            inbox = yield ctx.broadcast({"r": ctx.rng.randrange(1000)})
            return sorted((s, p["r"]) for s, p in inbox.items())

        a = run(coin_ish, [None] * 3, max_faulty=0, seed=5)
        b = run(coin_ish, [None] * 3, max_faulty=0, seed=5)
        c = run(coin_ish, [None] * 3, max_faulty=0, seed=6)
        assert a.outputs == b.outputs
        assert a.outputs != c.outputs

    def test_input_length_mismatch_rejected(self):
        sim = SyncSimulator(3, 0, ideal_suite(3, 0))
        with pytest.raises(SimulationError):
            sim.run(one_round_echo, [1, 2])

    def test_crypto_size_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            SyncSimulator(4, 1, ideal_suite(3, 0))

    def test_round_limit_guards_nontermination(self):
        def forever(ctx, _):
            while True:
                yield ctx.broadcast(None)

        sim = SyncSimulator(2, 0, ideal_suite(2, 0), max_rounds=10)
        with pytest.raises(RoundLimitError):
            sim.run(forever, [None, None])

    def test_honest_exception_propagates(self):
        def broken(ctx, _):
            yield ctx.broadcast(None)
            raise ValueError("honest bug")

        with pytest.raises(ValueError):
            run(broken, [None, None], max_faulty=0)


class TestAdversaryInterposition:
    def test_rushing_adversary_sees_honest_traffic(self):
        seen = {}

        class Peek(Adversary):
            def initial_corruptions(self):
                return {2}

            def decide(self, view):
                seen[view.round_index] = view.outboxes[0][1]
                return RoundDecision()

        run(one_round_echo, [7, 8, 9], max_faulty=1, adversary=Peek())
        assert seen[1] == {"v": 7}

    def test_replacement_of_corrupted_messages(self):
        class Liar(Adversary):
            def initial_corruptions(self):
                return {2}

            def decide(self, view):
                from repro.network.messages import Broadcast

                return RoundDecision(replace={2: Broadcast({"v": 999})})

        res = run(one_round_echo, [1, 2, 3], max_faulty=1, adversary=Liar())
        assert (2, 999) in res.outputs[0]

    def test_equivocation_per_recipient(self):
        class TwoFaced(Adversary):
            def initial_corruptions(self):
                return {2}

            def decide(self, view):
                return RoundDecision(
                    replace={2: {0: {"v": "left"}, 1: {"v": "right"}}}
                )

        res = run(one_round_echo, [1, 2, 3], max_faulty=1, adversary=TwoFaced())
        assert (2, "left") in res.outputs[0]
        assert (2, "right") in res.outputs[1]

    def test_adaptive_corruption_drops_in_flight_messages(self):
        class Strike(Adversary):
            def decide(self, view):
                if view.round_index == 1:
                    return RoundDecision(corrupt={0: None})
                return RoundDecision()

        res = run(one_round_echo, [1, 2, 3], max_faulty=1, adversary=Strike())
        assert 0 in res.corrupted
        # party 0's round-1 broadcast was dropped before delivery
        assert all(s != 0 for (s, _) in res.outputs[1])

    def test_budget_enforced_for_initial(self):
        class Greedy(Adversary):
            def initial_corruptions(self):
                return {0, 1}

        with pytest.raises(AdversaryBudgetError):
            run(one_round_echo, [1, 2, 3], max_faulty=1, adversary=Greedy())

    def test_budget_enforced_for_adaptive(self):
        class Greedy(Adversary):
            def decide(self, view):
                return RoundDecision(corrupt={0: None, 1: None})

        with pytest.raises(AdversaryBudgetError):
            run(one_round_echo, [1, 2, 3], max_faulty=1, adversary=Greedy())

    def test_cannot_replace_honest_messages_without_corruption(self):
        class Cheater(Adversary):
            def decide(self, view):
                return RoundDecision(replace={0: None})

        with pytest.raises(SimulationError):
            run(one_round_echo, [1, 2, 3], max_faulty=1, adversary=Cheater())

    def test_observe_receives_corrupted_inboxes(self):
        observed = {}

        class Watcher(Adversary):
            def initial_corruptions(self):
                return {1}

            def observe(self, round_index, inboxes):
                observed[round_index] = inboxes

        run(one_round_echo, [5, 6, 7], max_faulty=1, adversary=Watcher())
        assert set(observed[1]) == {1}
        assert observed[1][1][0] == {"v": 5}

    def test_broken_corrupted_shadow_is_tolerated(self):
        def fragile(ctx, v):
            inbox = yield ctx.broadcast({"v": v})
            if ctx.party_id == 2:
                raise RuntimeError("shadow explodes")
            inbox = yield ctx.broadcast({"v": v})
            return True

        class Corruptor(Adversary):
            def initial_corruptions(self):
                return {2}

        res = run(fragile, [1, 2, 3], max_faulty=1, adversary=Corruptor())
        assert res.outputs[0] is True and res.outputs[1] is True


class TestRunProtocolHelper:
    def test_deals_keys_automatically(self):
        res = run_protocol(one_round_echo, [1, 2, 3], max_faulty=1, seed=3)
        assert res.honest_agree()

    def test_metrics_split_honest_corrupt(self):
        class Silent(Adversary):
            def initial_corruptions(self):
                return {0}

            def decide(self, view):
                return RoundDecision(replace={0: None})

        res = run_protocol(
            one_round_echo, [1, 2, 3], max_faulty=1, adversary=Silent()
        )
        assert res.metrics.honest_messages == 6  # 2 honest x 3 recipients
        assert res.metrics.corrupt_messages == 0
