"""Edge paths of the parallel combinator and context helpers."""

from repro.network.messages import PARALLEL_KEY
from repro.network.party import run_parallel

from ..conftest import run


def unicast_program(ctx, target, tag, rounds=1):
    """Sends only to `target` each round (exercises the unicast merge path)."""
    received = []
    for _ in range(rounds):
        inbox = yield {target: {"tag": tag}}
        received.append(sorted(inbox))
    return received


def broadcast_program(ctx, tag):
    inbox = yield ctx.broadcast({"tag": tag})
    return sorted(inbox)


class TestUnicastMerge:
    def test_mixed_broadcast_and_unicast_subprograms(self):
        """When any subprogram unicasts, the combinator expands all
        outboxes per recipient — messages still route correctly."""

        def factory(ctx, _):
            results = yield from run_parallel(
                ctx,
                {
                    "uni": unicast_program(ctx, target=1, tag="U"),
                    "bc": broadcast_program(ctx, "B"),
                },
            )
            return results

        res = run(factory, [None] * 3, 0, session="um1")
        # Party 1 received the unicast channel from everyone...
        assert res.outputs[1]["uni"] == [[0, 1, 2]]
        # ...party 0 received nothing on it (the envelope omits the tag).
        assert res.outputs[0]["uni"] == [[]]
        # The broadcast channel reached everyone regardless.
        assert res.outputs[0]["bc"] == [0, 1, 2]
        assert res.outputs[2]["bc"] == [0, 1, 2]

    def test_pure_unicast_parallel(self):
        def factory(ctx, _):
            results = yield from run_parallel(
                ctx,
                {
                    "a": unicast_program(ctx, target=0, tag="A"),
                    "b": unicast_program(ctx, target=2, tag="B"),
                },
            )
            return results

        res = run(factory, [None] * 3, 0, session="um2")
        assert res.outputs[0]["a"] == [[0, 1, 2]]
        assert res.outputs[2]["b"] == [[0, 1, 2]]
        assert res.outputs[1]["a"] == [[]]


class TestContextHelpers:
    def test_all_parties_enumerates_everyone(self):
        def factory(ctx, _):
            return list(ctx.all_parties())
            yield  # pragma: no cover

        res = run(factory, [None] * 4, 1, session="cx1")
        assert res.outputs[0] == [0, 1, 2, 3]

    def test_subsession_rng_is_shared_not_forked(self):
        """subsession() keeps the party RNG (determinism across the whole
        party program), only the session tag changes."""

        def factory(ctx, _):
            sub = ctx.subsession("s")
            return sub.rng is ctx.rng and sub.crypto is ctx.crypto
            yield  # pragma: no cover

        res = run(factory, [None] * 2, 0, session="cx2")
        assert res.outputs[0] is True
