"""Tests for execution metrics and signature counting."""

import random
from dataclasses import dataclass

from repro.crypto.ideal import IdealSignatureScheme, IdealThresholdScheme
from repro.network.metrics import (
    RunMetrics,
    count_signatures,
    count_signatures_reference,
)


class TestCountSignatures:
    def setup_method(self):
        self.plain = IdealSignatureScheme(3, random.Random(1))
        self.threshold = IdealThresholdScheme(3, 2, random.Random(2))

    def test_counts_plain_and_shares_and_combined(self):
        sig = self.plain.sign(0, "m")
        share = self.threshold.sign_share(0, "m")
        combined = self.threshold.combine(
            [(i, self.threshold.sign_share(i, "m")) for i in range(2)], "m"
        )
        assert count_signatures(sig) == 1
        assert count_signatures(share) == 1
        assert count_signatures(combined) == 1

    def test_counts_nested_structures(self):
        sig = self.plain.sign(0, "m")
        payload = {
            "a": [(0, sig), (1, sig)],
            "b": {"inner": (sig, sig)},
            "c": 123,
            "d": "text",
        }
        assert count_signatures(payload) == 4

    def test_plain_data_counts_zero(self):
        assert count_signatures(None) == 0
        assert count_signatures({"v": 1, "g": [2, 3]}) == 0
        assert count_signatures((1, "x", b"y")) == 0


class TestCachedMatchesReference:
    """The type-dispatch cache must agree with the reference walk exactly."""

    def setup_method(self):
        self.plain = IdealSignatureScheme(3, random.Random(1))
        self.threshold = IdealThresholdScheme(3, 2, random.Random(2))

    def _payloads(self):
        sig = self.plain.sign(0, "m")
        share = self.threshold.sign_share(1, "m")
        combined = self.threshold.combine(
            [(i, self.threshold.sign_share(i, "m")) for i in range(2)], "m"
        )
        return [
            None,
            0,
            True,
            "text",
            b"bytes",
            3.5,
            sig,
            share,
            combined,
            (sig, share),
            [sig, [share, [combined]]],
            {"vote": (1, sig), "echo": {"deep": [share]}},
            {"mixed": [0, None, "x", sig, (b"y", combined)]},
            [],
            {},
            (),
            [[], {}, ()],
        ]

    def test_cached_equals_reference_on_every_payload(self):
        for payload in self._payloads():
            assert count_signatures(payload) == count_signatures_reference(
                payload
            ), payload

    def test_unknown_container_types_count_zero(self):
        """Documented limitation: generators, iterators and custom
        non-dataclass classes holding signatures count 0 in BOTH
        implementations — simulator payloads are always built from the
        traversed containers (dict/list/tuple/set/frozenset/dataclass),
        so the walk never consumes or guesses at opaque objects."""
        sig = self.plain.sign(0, "m")

        class Opaque:
            def __init__(self, inner):
                self.inner = inner

        for payload in (Opaque(sig), (s for s in [sig]), iter([sig])):
            assert count_signatures_reference(payload) == 0
            assert count_signatures(payload) == 0

    def test_sets_and_foreign_dataclasses_are_traversed(self):
        """Sets/frozensets and non-crypto dataclasses are recognized
        containers: the walk recurses into them rather than counting them
        as signatures themselves."""
        sig = self.plain.sign(0, "m")

        @dataclass(frozen=True)
        class Envelope:
            payload: object
            label: str = "x"

        for payload, expected in (
            ({sig}, 1),
            (frozenset({sig}), 1),
            (Envelope(sig), 1),
            (Envelope((sig, {sig})), 2),
            (Envelope("no signatures here"), 0),
        ):
            assert count_signatures_reference(payload) == expected, payload
            assert count_signatures(payload) == expected, payload

    def test_cache_is_stable_across_repeats(self):
        sig = self.plain.sign(0, "m")
        payload = {"a": [(0, sig), (1, sig)], "b": {"inner": (sig, sig)}}
        first = count_signatures(payload)
        assert all(count_signatures(payload) == first for _ in range(5))
        assert first == count_signatures_reference(payload) == 4


class TestRunMetrics:
    def test_honest_corrupt_split(self):
        metrics = RunMetrics()
        metrics.record(1, honest=True, signature_count=2)
        metrics.record(1, honest=False, signature_count=3)
        metrics.record(2, honest=True, signature_count=0)
        assert metrics.honest_messages == 2
        assert metrics.corrupt_messages == 1
        assert metrics.total_messages == 3
        assert metrics.honest_signatures == 2
        assert metrics.total_signatures == 5

    def test_per_round_breakdown(self):
        metrics = RunMetrics()
        metrics.record(1, True, 1)
        metrics.record(2, True, 1)
        metrics.record(2, True, 1)
        assert metrics.per_round[1].honest_messages == 1
        assert metrics.per_round[2].honest_messages == 2

    def test_round_stats_returns_live_tally(self):
        metrics = RunMetrics()
        stats = metrics.round_stats(3)
        stats.honest_messages += 2
        stats.honest_signatures += 5
        assert metrics.per_round[3].honest_messages == 2
        assert metrics.honest_signatures == 5
        assert metrics.round_stats(3) is stats

    def test_merge_accumulates_rounds_and_per_round(self):
        a = RunMetrics()
        a.record(1, True, 2)
        a.rounds = 3
        b = RunMetrics()
        b.record(1, False, 1)
        b.record(2, True, 0)
        b.rounds = 2
        a.merge(b)
        assert a.rounds == 5
        assert a.per_round[1].honest_messages == 1
        assert a.per_round[1].corrupt_messages == 1
        assert a.per_round[2].honest_messages == 1
        assert a.total_signatures == 3

    def test_merged_of_empty_iterable_is_zero(self):
        merged = RunMetrics.merged([])
        assert merged.rounds == 0
        assert merged.total_messages == 0
