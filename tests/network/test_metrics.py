"""Tests for execution metrics and signature counting."""

import random
from dataclasses import dataclass

from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.ideal import IdealSignatureScheme, IdealThresholdScheme
from repro.network.metrics import (
    RoundStats,
    RunMetrics,
    count_signatures,
    count_signatures_reference,
)


class TestCountSignatures:
    def setup_method(self):
        self.plain = IdealSignatureScheme(3, random.Random(1))
        self.threshold = IdealThresholdScheme(3, 2, random.Random(2))

    def test_counts_plain_and_shares_and_combined(self):
        sig = self.plain.sign(0, "m")
        share = self.threshold.sign_share(0, "m")
        combined = self.threshold.combine(
            [(i, self.threshold.sign_share(i, "m")) for i in range(2)], "m"
        )
        assert count_signatures(sig) == 1
        assert count_signatures(share) == 1
        assert count_signatures(combined) == 1

    def test_counts_nested_structures(self):
        sig = self.plain.sign(0, "m")
        payload = {
            "a": [(0, sig), (1, sig)],
            "b": {"inner": (sig, sig)},
            "c": 123,
            "d": "text",
        }
        assert count_signatures(payload) == 4

    def test_plain_data_counts_zero(self):
        assert count_signatures(None) == 0
        assert count_signatures({"v": 1, "g": [2, 3]}) == 0
        assert count_signatures((1, "x", b"y")) == 0


class TestCachedMatchesReference:
    """The type-dispatch cache must agree with the reference walk exactly."""

    def setup_method(self):
        self.plain = IdealSignatureScheme(3, random.Random(1))
        self.threshold = IdealThresholdScheme(3, 2, random.Random(2))

    def _payloads(self):
        sig = self.plain.sign(0, "m")
        share = self.threshold.sign_share(1, "m")
        combined = self.threshold.combine(
            [(i, self.threshold.sign_share(i, "m")) for i in range(2)], "m"
        )
        return [
            None,
            0,
            True,
            "text",
            b"bytes",
            3.5,
            sig,
            share,
            combined,
            (sig, share),
            [sig, [share, [combined]]],
            {"vote": (1, sig), "echo": {"deep": [share]}},
            {"mixed": [0, None, "x", sig, (b"y", combined)]},
            [],
            {},
            (),
            [[], {}, ()],
        ]

    def test_cached_equals_reference_on_every_payload(self):
        for payload in self._payloads():
            assert count_signatures(payload) == count_signatures_reference(
                payload
            ), payload

    def test_unknown_container_types_count_zero(self):
        """Documented limitation: generators, iterators and custom
        non-dataclass classes holding signatures count 0 in BOTH
        implementations — simulator payloads are always built from the
        traversed containers (dict/list/tuple/set/frozenset/dataclass),
        so the walk never consumes or guesses at opaque objects."""
        sig = self.plain.sign(0, "m")

        class Opaque:
            def __init__(self, inner):
                self.inner = inner

        for payload in (Opaque(sig), (s for s in [sig]), iter([sig])):
            assert count_signatures_reference(payload) == 0
            assert count_signatures(payload) == 0

    def test_sets_and_foreign_dataclasses_are_traversed(self):
        """Sets/frozensets and non-crypto dataclasses are recognized
        containers: the walk recurses into them rather than counting them
        as signatures themselves."""
        sig = self.plain.sign(0, "m")

        @dataclass(frozen=True)
        class Envelope:
            payload: object
            label: str = "x"

        for payload, expected in (
            ({sig}, 1),
            (frozenset({sig}), 1),
            (Envelope(sig), 1),
            (Envelope((sig, {sig})), 2),
            (Envelope("no signatures here"), 0),
        ):
            assert count_signatures_reference(payload) == expected, payload
            assert count_signatures(payload) == expected, payload

    def test_cache_is_stable_across_repeats(self):
        sig = self.plain.sign(0, "m")
        payload = {"a": [(0, sig), (1, sig)], "b": {"inner": (sig, sig)}}
        first = count_signatures(payload)
        assert all(count_signatures(payload) == first for _ in range(5))
        assert first == count_signatures_reference(payload) == 4


class TestRunMetrics:
    def test_honest_corrupt_split(self):
        metrics = RunMetrics()
        metrics.record(1, honest=True, signature_count=2)
        metrics.record(1, honest=False, signature_count=3)
        metrics.record(2, honest=True, signature_count=0)
        assert metrics.honest_messages == 2
        assert metrics.corrupt_messages == 1
        assert metrics.total_messages == 3
        assert metrics.honest_signatures == 2
        assert metrics.total_signatures == 5

    def test_per_round_breakdown(self):
        metrics = RunMetrics()
        metrics.record(1, True, 1)
        metrics.record(2, True, 1)
        metrics.record(2, True, 1)
        assert metrics.per_round[1].honest_messages == 1
        assert metrics.per_round[2].honest_messages == 2

    def test_round_stats_returns_live_tally(self):
        metrics = RunMetrics()
        stats = metrics.round_stats(3)
        stats.honest_messages += 2
        stats.honest_signatures += 5
        assert metrics.per_round[3].honest_messages == 2
        assert metrics.honest_signatures == 5
        assert metrics.round_stats(3) is stats

    def test_merge_accumulates_rounds_and_per_round(self):
        a = RunMetrics()
        a.record(1, True, 2)
        a.rounds = 3
        b = RunMetrics()
        b.record(1, False, 1)
        b.record(2, True, 0)
        b.rounds = 2
        a.merge(b)
        assert a.rounds == 5
        assert a.per_round[1].honest_messages == 1
        assert a.per_round[1].corrupt_messages == 1
        assert a.per_round[2].honest_messages == 1
        assert a.total_signatures == 3

    def test_merged_of_empty_iterable_is_zero(self):
        merged = RunMetrics.merged([])
        assert merged.rounds == 0
        assert merged.total_messages == 0


# Randomized metrics shapes for the tally round-trip properties: up to a
# dozen rounds with arbitrary (possibly non-contiguous, unsorted) round
# indices and arbitrary tallies, plus a free-standing rounds total.
_count = st.integers(min_value=0, max_value=1 << 20)
_round_entry = st.tuples(
    st.integers(min_value=0, max_value=4096), _count, _count, _count, _count
)
_metrics_shape = st.tuples(
    st.lists(_round_entry, max_size=12, unique_by=lambda entry: entry[0]),
    st.integers(min_value=0, max_value=4096),
)


def _build(shape) -> RunMetrics:
    entries, rounds = shape
    metrics = RunMetrics(rounds=rounds)
    for round_index, hm, cm, hs, cs in entries:
        metrics.per_round[round_index] = RoundStats(
            honest_messages=hm,
            corrupt_messages=cm,
            honest_signatures=hs,
            corrupt_signatures=cs,
        )
    return metrics


class TestTallyRoundTrip:
    """``from_tallies(rounds, as_tallies())`` is the exact inverse, and
    merging commutes with the round trip — the properties the engine's
    compact result transport stands on."""

    @given(_metrics_shape)
    def test_pack_unpack_is_identity(self, shape):
        metrics = _build(shape)
        rebuilt = RunMetrics.from_tallies(metrics.rounds, metrics.as_tallies())
        assert rebuilt == metrics
        # Equality ignores dict order; transport fidelity must not.
        assert list(rebuilt.per_round) == list(metrics.per_round)

    @given(_metrics_shape, _metrics_shape)
    def test_merge_after_roundtrip_equals_direct_merge(self, a_shape, b_shape):
        direct = _build(a_shape)
        direct.merge(_build(b_shape))
        via_wire = RunMetrics.merged(
            RunMetrics.from_tallies(m.rounds, m.as_tallies())
            for m in (_build(a_shape), _build(b_shape))
        )
        assert via_wire == direct

    def test_empty_metrics_roundtrip(self):
        empty = RunMetrics()
        assert RunMetrics.from_tallies(empty.rounds, empty.as_tallies()) == empty
        assert empty.as_tallies() == ()

    def test_single_round_roundtrip(self):
        metrics = RunMetrics()
        metrics.record(1, honest=True, signature_count=3)
        metrics.rounds = 1
        rebuilt = RunMetrics.from_tallies(metrics.rounds, metrics.as_tallies())
        assert rebuilt == metrics
        assert rebuilt.total_signatures == 3

    def test_ragged_tallies_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="multiple of 5"):
            RunMetrics.from_tallies(1, (1, 2, 3))
