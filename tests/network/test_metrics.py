"""Tests for execution metrics and signature counting."""

import random

from repro.crypto.ideal import IdealSignatureScheme, IdealThresholdScheme
from repro.network.metrics import RunMetrics, count_signatures


class TestCountSignatures:
    def setup_method(self):
        self.plain = IdealSignatureScheme(3, random.Random(1))
        self.threshold = IdealThresholdScheme(3, 2, random.Random(2))

    def test_counts_plain_and_shares_and_combined(self):
        sig = self.plain.sign(0, "m")
        share = self.threshold.sign_share(0, "m")
        combined = self.threshold.combine(
            [(i, self.threshold.sign_share(i, "m")) for i in range(2)], "m"
        )
        assert count_signatures(sig) == 1
        assert count_signatures(share) == 1
        assert count_signatures(combined) == 1

    def test_counts_nested_structures(self):
        sig = self.plain.sign(0, "m")
        payload = {
            "a": [(0, sig), (1, sig)],
            "b": {"inner": (sig, sig)},
            "c": 123,
            "d": "text",
        }
        assert count_signatures(payload) == 4

    def test_plain_data_counts_zero(self):
        assert count_signatures(None) == 0
        assert count_signatures({"v": 1, "g": [2, 3]}) == 0
        assert count_signatures((1, "x", b"y")) == 0


class TestRunMetrics:
    def test_honest_corrupt_split(self):
        metrics = RunMetrics()
        metrics.record(1, honest=True, signature_count=2)
        metrics.record(1, honest=False, signature_count=3)
        metrics.record(2, honest=True, signature_count=0)
        assert metrics.honest_messages == 2
        assert metrics.corrupt_messages == 1
        assert metrics.total_messages == 3
        assert metrics.honest_signatures == 2
        assert metrics.total_signatures == 5

    def test_per_round_breakdown(self):
        metrics = RunMetrics()
        metrics.record(1, True, 1)
        metrics.record(2, True, 1)
        metrics.record(2, True, 1)
        assert metrics.per_round[1].honest_messages == 1
        assert metrics.per_round[2].honest_messages == 2
