"""Test package."""
