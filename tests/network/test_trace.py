"""Tests for execution tracing."""

import random

from repro.crypto.ideal import IdealThresholdScheme
from repro.network.messages import PARALLEL_KEY
from repro.network.simulator import SyncSimulator
from repro.network.trace import Tracer, summarize_payload

from ..conftest import ideal_suite


def traced_run(factory, inputs, max_faulty, adversary=None, seed=0):
    tracer = Tracer()
    simulator = SyncSimulator(
        num_parties=len(inputs),
        max_faulty=max_faulty,
        crypto=ideal_suite(len(inputs), max_faulty),
        adversary=adversary,
        seed=seed,
        session="tr",
        tracer=tracer,
    )
    result = simulator.run(factory, inputs)
    return result, tracer


def two_round_echo(ctx, value):
    yield ctx.broadcast({"v": value})
    yield ctx.broadcast({"v": value + 1})
    return value


class TestSummarizePayload:
    def test_scalars(self):
        assert summarize_payload(None) == "∅"
        assert summarize_payload(5) == "5"
        assert summarize_payload(True) == "True"
        assert summarize_payload(2 ** 80) == "int(81b)"
        assert summarize_payload("hello") == "'hello'"
        assert "..." in summarize_payload("a-very-long-string-indeed")
        assert summarize_payload(b"\x00" * 7) == "bytes[7]"

    def test_signature_objects_are_marked(self):
        scheme = IdealThresholdScheme(3, 2, random.Random(1))
        share = scheme.sign_share(0, "m")
        assert summarize_payload(share) == "<IdealShare>"

    def test_dicts_and_sequences_are_bounded(self):
        big = {f"k{i}": i for i in range(10)}
        summary = summarize_payload(big)
        assert "…" in summary and len(summary) < 120
        assert summarize_payload((1, 2, 3, 4, 5)).endswith(", …)")

    def test_parallel_envelope_rendering(self):
        payload = {PARALLEL_KEY: {"prox": {"v": 1}, "coin": None}}
        summary = summarize_payload(payload)
        assert summary.startswith("∥{") and "prox" in summary and "coin" in summary

    def test_depth_bound(self):
        nested = {"a": {"b": {"c": {"d": {"e": 1}}}}}
        assert "…" in summarize_payload(nested)


class TestTracer:
    def test_records_all_messages(self):
        result, tracer = traced_run(two_round_echo, [1, 2, 3], 0)
        assert tracer.rounds == 2
        assert len(tracer.events_in_round(1)) == 9  # 3 senders x 3 recipients
        assert len(tracer.events) == 18

    def test_records_corruptions_with_round(self):
        from repro.adversary.base import Adversary, RoundDecision

        class Strike(Adversary):
            def decide(self, view):
                if view.round_index == 2:
                    return RoundDecision(corrupt={0: None})
                return RoundDecision()

        _result, tracer = traced_run(two_round_echo, [1, 2, 3], 1, adversary=Strike())
        assert tracer.corruptions == [(2, 0)]

    def test_honesty_flag(self):
        from repro.adversary.strategies import CrashAdversary

        _result, tracer = traced_run(
            two_round_echo, [1, 2, 3], 1,
            adversary=CrashAdversary(victims=[2], crash_round=2),
        )
        round1 = tracer.events_in_round(1)
        assert any(not e.sender_honest for e in round1 if e.sender == 2)
        # Crashed in round 2: no messages from party 2 at all.
        assert all(e.sender != 2 for e in tracer.events_in_round(2))

    def test_render_contains_rounds_and_corruption_markers(self):
        from repro.adversary.base import Adversary, RoundDecision

        class Strike(Adversary):
            def decide(self, view):
                if view.round_index == 1:
                    return RoundDecision(corrupt={1: None})
                return RoundDecision()

        _result, tracer = traced_run(two_round_echo, [1, 2, 3], 1, adversary=Strike())
        rendered = tracer.render()
        assert "── round 1" in rendered and "── round 2" in rendered
        assert "⚡ corrupted: P1" in rendered
        assert "P0" in rendered

    def test_tracing_a_real_protocol(self):
        from repro.core.ba import ba_one_half_program

        result, tracer = traced_run(
            lambda c, b: ba_one_half_program(c, b, kappa=2), [1, 0, 1, 0, 1], 2
        )
        assert result.honest_agree()
        assert tracer.rounds == 3
        rendered = tracer.render()
        # round 3 carries the parallel prox ∥ coin envelope
        assert "∥{" in rendered
