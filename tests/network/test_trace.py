"""Tests for execution tracing."""

import random

from repro.crypto.ideal import IdealThresholdScheme
from repro.network.messages import PARALLEL_KEY
from repro.network.simulator import SyncSimulator
from repro.network.trace import Tracer, summarize_payload

from ..conftest import ideal_suite


def traced_run(factory, inputs, max_faulty, adversary=None, seed=0):
    tracer = Tracer()
    simulator = SyncSimulator(
        num_parties=len(inputs),
        max_faulty=max_faulty,
        crypto=ideal_suite(len(inputs), max_faulty),
        adversary=adversary,
        seed=seed,
        session="tr",
        tracer=tracer,
    )
    result = simulator.run(factory, inputs)
    return result, tracer


def two_round_echo(ctx, value):
    yield ctx.broadcast({"v": value})
    yield ctx.broadcast({"v": value + 1})
    return value


class TestSummarizePayload:
    def test_scalars(self):
        assert summarize_payload(None) == "∅"
        assert summarize_payload(5) == "5"
        assert summarize_payload(True) == "True"
        assert summarize_payload(2 ** 80) == "int(81b)"
        assert summarize_payload("hello") == "'hello'"
        assert "..." in summarize_payload("a-very-long-string-indeed")
        assert summarize_payload(b"\x00" * 7) == "bytes[7]"

    def test_signature_objects_are_marked(self):
        scheme = IdealThresholdScheme(3, 2, random.Random(1))
        share = scheme.sign_share(0, "m")
        assert summarize_payload(share) == "<IdealShare>"

    def test_dicts_and_sequences_are_bounded(self):
        big = {f"k{i}": i for i in range(10)}
        summary = summarize_payload(big)
        assert "…" in summary and len(summary) < 120
        assert summarize_payload((1, 2, 3, 4, 5)).endswith(", …)")

    def test_parallel_envelope_rendering(self):
        payload = {PARALLEL_KEY: {"prox": {"v": 1}, "coin": None}}
        summary = summarize_payload(payload)
        assert summary.startswith("∥{") and "prox" in summary and "coin" in summary

    def test_depth_bound(self):
        nested = {"a": {"b": {"c": {"d": {"e": 1}}}}}
        assert "…" in summarize_payload(nested)

    def test_sets_render_sorted_and_deterministically(self):
        # Sets iterate in hash order, which varies with PYTHONHASHSEED
        # for strings — the summary must sort, not echo iteration order.
        assert summarize_payload({"echoes": {"pk2", "pk0", "pk1"}}) == (
            "{echoes={'pk0', 'pk1', 'pk2'}}"
        )
        assert summarize_payload(frozenset([3, 1, 2])) == "{1, 2, 3}"
        big = summarize_payload({9, 8, 7, 6, 5})
        assert big == "{5, 6, 7, …}"
        # Pin exact equality across distinct set objects with different
        # insertion histories.
        forward = {f"k{i}" for i in range(6)}
        backward = {f"k{i}" for i in reversed(range(6))}
        assert summarize_payload(forward) == summarize_payload(backward)


class TestTracer:
    def test_records_all_messages(self):
        result, tracer = traced_run(two_round_echo, [1, 2, 3], 0)
        assert tracer.rounds == 2
        assert len(tracer.events_in_round(1)) == 9  # 3 senders x 3 recipients
        assert len(tracer.events) == 18

    def test_records_corruptions_with_round(self):
        from repro.adversary.base import Adversary, RoundDecision

        class Strike(Adversary):
            def decide(self, view):
                if view.round_index == 2:
                    return RoundDecision(corrupt={0: None})
                return RoundDecision()

        _result, tracer = traced_run(two_round_echo, [1, 2, 3], 1, adversary=Strike())
        assert tracer.corruptions == [(2, 0)]

    def test_honesty_flag(self):
        from repro.adversary.strategies import CrashAdversary

        _result, tracer = traced_run(
            two_round_echo, [1, 2, 3], 1,
            adversary=CrashAdversary(victims=[2], crash_round=2),
        )
        round1 = tracer.events_in_round(1)
        assert any(not e.sender_honest for e in round1 if e.sender == 2)
        # Crashed in round 2: no messages from party 2 at all.
        assert all(e.sender != 2 for e in tracer.events_in_round(2))

    def test_render_contains_rounds_and_corruption_markers(self):
        from repro.adversary.base import Adversary, RoundDecision

        class Strike(Adversary):
            def decide(self, view):
                if view.round_index == 1:
                    return RoundDecision(corrupt={1: None})
                return RoundDecision()

        _result, tracer = traced_run(two_round_echo, [1, 2, 3], 1, adversary=Strike())
        rendered = tracer.render()
        assert "── round 1" in rendered and "── round 2" in rendered
        assert "⚡ corrupted: P1" in rendered
        assert "P0" in rendered

    def test_tracing_a_real_protocol(self):
        from repro.core.ba import ba_one_half_program

        result, tracer = traced_run(
            lambda c, b: ba_one_half_program(c, b, kappa=2), [1, 0, 1, 0, 1], 2
        )
        assert result.honest_agree()
        assert tracer.rounds == 3
        rendered = tracer.render()
        # round 3 carries the parallel prox ∥ coin envelope
        assert "∥{" in rendered

    def test_signature_counts_are_stamped_on_events(self):
        from repro.core.ba import ba_one_third_program

        _result, tracer = traced_run(
            lambda c, b: ba_one_third_program(c, b, kappa=2), [1, 0, 1, 0], 1
        )
        assert any(e.signatures > 0 for e in tracer.events)


class _CountingEvents(list):
    """A list that counts full iterations — the quadratic-scan detector."""

    def __init__(self, items):
        super().__init__(items)
        self.iterations = 0

    def __iter__(self):
        self.iterations += 1
        return super().__iter__()


class TestRenderPerfShape:
    def test_render_never_rescans_the_full_event_list(self):
        """The old renderer filtered ``self.events`` once per round — an
        O(rounds × events) scan.  Events are now bucketed by round at
        record time, so ``render()`` must not iterate the flat event list
        at all, regardless of round count."""
        from repro.network.trace import MemoryTraceSink, TraceEvent

        sink = MemoryTraceSink()
        for round_index in range(1, 201):
            for sender in range(4):
                for recipient in range(4):
                    sink.record_event(TraceEvent(
                        round_index=round_index, sender=sender,
                        recipient=recipient, summary="{v=1}",
                        sender_honest=True,
                    ))
        counter = _CountingEvents(sink.events)
        sink.events = counter
        rendered = sink.render()
        assert "── round 200" in rendered
        assert counter.iterations == 0

    def test_events_in_round_is_indexed_not_scanned(self):
        from repro.network.trace import MemoryTraceSink, TraceEvent

        sink = MemoryTraceSink()
        for round_index in (1, 5, 9):
            sink.record_event(TraceEvent(
                round_index=round_index, sender=0, recipient=1,
                summary="x", sender_honest=True,
            ))
        counter = _CountingEvents(sink.events)
        sink.events = counter
        assert len(sink.events_in_round(5)) == 1
        assert sink.events_in_round(7) == []
        assert sink.rounds == 9
        assert counter.iterations == 0
