"""Tests for message envelopes and defensive accessors."""

import pytest

from repro.network.messages import (
    Broadcast,
    get_field,
    get_int,
    get_int_in_range,
    get_pair,
    normalize_outbox,
)


class TestNormalizeOutbox:
    def test_none_is_silence(self):
        assert normalize_outbox(None, 4) == {}

    def test_broadcast_reaches_everyone_including_self(self):
        expanded = normalize_outbox(Broadcast("x"), 3)
        assert expanded == {0: "x", 1: "x", 2: "x"}

    def test_dict_passthrough_filters_bad_recipients(self):
        expanded = normalize_outbox({0: "a", 7: "b", -1: "c", "x": "d"}, 3)
        assert expanded == {0: "a"}

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            normalize_outbox("hello", 3)
        with pytest.raises(TypeError):
            normalize_outbox([("a", 1)], 3)


class TestAccessors:
    def test_get_field(self):
        assert get_field({"k": 5}, "k") == 5
        assert get_field({"k": 5}, "missing") is None
        assert get_field("not a dict", "k") is None
        assert get_field(None, "k") is None

    def test_get_int_rejects_bool_and_nonints(self):
        assert get_int({"k": 5}, "k") == 5
        assert get_int({"k": True}, "k") is None
        assert get_int({"k": 5.0}, "k") is None
        assert get_int({"k": "5"}, "k") is None
        assert get_int(7, "k") is None

    def test_get_int_in_range(self):
        assert get_int_in_range({"k": 5}, "k", 0, 10) == 5
        assert get_int_in_range({"k": 11}, "k", 0, 10) is None
        assert get_int_in_range({"k": -1}, "k", 0, 10) is None

    def test_get_pair(self):
        assert get_pair({"k": (1, 2)}, "k") == (1, 2)
        assert get_pair({"k": [1, 2]}, "k") == (1, 2)
        assert get_pair({"k": (1, 2, 3)}, "k") is None
        assert get_pair({"k": 5}, "k") is None
