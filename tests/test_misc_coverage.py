"""Remaining coverage: fuzz-safety of helpers, CLI branches, coin overlap."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core.ba import ba_one_half_program
from repro.core.iteration import ideal_coin_factory
from repro.crypto.coin import IdealCoin
from repro.network.trace import summarize_payload

from .conftest import run

# Arbitrary nested payloads, including the unhashable and the exotic.
payloads = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2 ** 200), max_value=2 ** 200),
        st.floats(allow_nan=True, allow_infinity=True),
        st.text(max_size=30),
        st.binary(max_size=30),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=5), children, max_size=4),
        st.lists(children, max_size=3).map(tuple),
    ),
    max_leaves=15,
)


class TestSummarizeNeverRaises:
    @given(payload=payloads)
    @settings(max_examples=150, deadline=None)
    def test_any_payload_summarizes(self, payload):
        summary = summarize_payload(payload)
        assert isinstance(summary, str)
        assert len(summary) < 2000


class TestIdealCoinInsideOverlappedBA:
    def test_ba_one_half_with_ideal_coin(self):
        coin = IdealCoin(random.Random(77))
        factory = lambda c, b: ba_one_half_program(
            c, b, kappa=4, coin_factory=ideal_coin_factory(coin)
        )
        res = run(factory, [1, 0, 1, 0, 1], 2, session="ic12")
        assert res.honest_agree()
        assert res.metrics.rounds == 6
        # the ideal coin sends no payload: round-3 messages carry only prox
        assert res.metrics.per_round[3].honest_signatures > 0


class TestCliBranches:
    def test_error_sweep_one_half(self, capsys):
        assert main(
            ["error-sweep", "--protocol", "one_half",
             "--kappas", "2", "--trials", "20"]
        ) == 0
        assert "one_half" in capsys.readouterr().out

    def test_run_with_explicit_victims(self, capsys):
        code = main(
            ["run", "--protocol", "one_third", "--kappa", "4",
             "--inputs", "1,1,1,1", "--t", "1",
             "--adversary", "crash", "--victims", "0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "corrupted  : [0]" in out

    def test_run_exit_code_reflects_agreement(self, capsys):
        # kappa=1 under the worst-case straddle fails ~half the time; try
        # seeds until we see both exit codes (deterministic per seed).
        codes = set()
        for seed in range(12):
            codes.add(
                main(
                    ["run", "--protocol", "one_third", "--kappa", "1",
                     "--inputs", "0,0,1,1", "--t", "1",
                     "--adversary", "straddle", "--seed", str(seed)]
                )
            )
            capsys.readouterr()
            if codes == {0, 1}:
                break
        assert codes == {0, 1}
